"""Tests for the pseudocode parser (paper-style protocol text)."""

import numpy as np
import pytest

from repro.core import Population, V
from repro.core.formula import ANY
from repro.lang import (
    Assign,
    Execute,
    IfExists,
    IdealInterpreter,
    ParseError,
    Repeat,
    RepeatLog,
    parse_formula,
    parse_program,
    parse_rule,
    program_schema,
)


class TestFormulaParsing:
    def _state(self, **values):
        from repro.core import StateSchema

        schema = StateSchema()
        schema.flags("A", "B", "C")
        return schema.unpack(schema.pack(values))

    def test_single_variable(self):
        assert parse_formula("A").evaluate(self._state(A=True))

    def test_negation(self):
        assert parse_formula("~A").evaluate(self._state(A=False))

    def test_conjunction(self):
        f = parse_formula("A & ~B")
        assert f.evaluate(self._state(A=True))
        assert not f.evaluate(self._state(A=True, B=True))

    def test_disjunction_precedence(self):
        # & binds tighter than |
        f = parse_formula("A | B & C")
        assert f.evaluate(self._state(A=True))
        assert not f.evaluate(self._state(B=True))
        assert f.evaluate(self._state(B=True, C=True))

    def test_parentheses(self):
        f = parse_formula("(A | B) & C")
        assert not f.evaluate(self._state(A=True))
        assert f.evaluate(self._state(A=True, C=True))

    def test_dot_is_any(self):
        assert parse_formula(".") is ANY

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("A &")
        with pytest.raises(ParseError):
            parse_formula("(A")
        with pytest.raises(ParseError):
            parse_formula("A ! B")


class TestRuleParsing:
    def test_paper_rule(self):
        rule = parse_rule("> (A) + (B) -> (~A) + (~B)")
        from repro.core import StateSchema

        schema = StateSchema()
        schema.flags("A", "B")
        ca, cb = schema.pack({"A": True}), schema.pack({"B": True})
        [(na, nb, p)] = rule.outcomes(schema, ca, cb)
        assert na == 0 and nb == 0 and p == 1.0

    def test_dot_guard(self):
        rule = parse_rule("> (X) + (.) -> (~X) + (.)")
        from repro.core import StateSchema

        schema = StateSchema()
        schema.flag("X")
        assert rule.outcomes(schema, schema.pack({"X": True}), 0)

    def test_conjunction_update(self):
        rule = parse_rule("> (I) + (I) -> (~I & S) + (~I & ~S)")
        from repro.core import StateSchema

        schema = StateSchema()
        schema.flags("I", "S")
        code = schema.pack({"I": True})
        [(na, nb, _)] = rule.outcomes(schema, code, code)
        assert schema.value_of(na, "S") is True
        assert schema.value_of(nb, "S") is False

    def test_malformed_rule(self):
        with pytest.raises(ParseError):
            parse_rule("(A) + (B) -> (A)")
        with pytest.raises(ParseError):
            parse_rule("> (A) + (B) -> (A | B) + (.)")  # disjunctive update


LEADER_ELECTION_TEXT = """
def protocol LeaderElection
var L <- on as output, D <- off, F <- on:
thread Main uses L:
  repeat:
    if exists (L):
      F := {on, off} uniformly at random
      D := L & F
      if exists (D):
        L := D
    else:
      L := on
"""

EXACT_TEXT = """
def protocol MiniExact
var L <- on as output, R <- on:
thread Main uses L, reads R:
  repeat:
    if exists (L):
      L := L & R
    else:
      L := R
thread ReduceSets uses R:
  execute ruleset:
    > (R) + (R & ~L) -> (R) + (~R & ~L)
"""

MAJORITY_TEXT = """
def protocol MiniMajority
var YA <- off as output, A <- off as input, B <- off as input:
thread Main uses YA:
  var As <- off, Bs <- off, K <- off
  repeat:
    As := A
    Bs := B
    repeat >= 2 ln n times:
      execute for >= 2 ln n rounds ruleset:
        > (As) + (Bs) -> (~As) + (~Bs)
      K := off
      execute for >= 2 ln n rounds ruleset:
        > (As & ~K) + (~As & ~Bs) -> (As & K) + (As & K)
        > (Bs & ~K) + (~As & ~Bs) -> (Bs & K) + (Bs & K)
    if exists (As):
      YA := on
    if exists (Bs):
      YA := off
"""


class TestProgramParsing:
    def test_header_and_variables(self):
        prog = parse_program(LEADER_ELECTION_TEXT)
        assert prog.name == "LeaderElection"
        assert prog.outputs == ["L"]
        assert prog.variable("F").init is True

    def test_structure(self):
        prog = parse_program(LEADER_ELECTION_TEXT)
        body = prog.main_thread.body
        assert isinstance(body, Repeat)
        [outer_if] = body.body
        assert isinstance(outer_if, IfExists)
        assert isinstance(outer_if.then_block[0], Assign)
        assert outer_if.then_block[0].random
        assert isinstance(outer_if.else_block[0], Assign)

    def test_perpetual_thread(self):
        prog = parse_program(EXACT_TEXT)
        assert [t.name for t in prog.threads] == ["Main", "ReduceSets"]
        assert len(prog.background_threads) == 1
        assert len(prog.background_threads[0].perpetual) == 1

    def test_thread_uses_and_reads(self):
        prog = parse_program(EXACT_TEXT)
        assert prog.main_thread.uses == ("L",)
        assert prog.main_thread.reads == ("R",)

    def test_local_var_lines(self):
        prog = parse_program(MAJORITY_TEXT)
        assert prog.variable("As").init is False
        assert prog.variable("K").init is False

    def test_nested_loops_and_rulesets(self):
        prog = parse_program(MAJORITY_TEXT)
        assert prog.loop_depth() == 2
        [a1, a2, loop, if1, if2] = prog.main_thread.body.body
        assert isinstance(loop, RepeatLog)
        assert loop.c == 2
        assert isinstance(loop.body[0], Execute)
        assert len(loop.body[2].rules) == 2

    def test_roundtrip_via_pretty(self):
        prog = parse_program(LEADER_ELECTION_TEXT)
        again = parse_program(prog.pretty())
        assert again.pretty() == prog.pretty()

    def test_parsed_program_runs(self):
        prog = parse_program(LEADER_ELECTION_TEXT)
        schema = program_schema(prog)
        pop = Population.uniform(
            schema, 300, {d.name: d.init for d in prog.variables}
        )
        interp = IdealInterpreter(prog, pop, rng=np.random.default_rng(1))
        interp.run(30, stop=lambda p: p.count(V("L")) == 1)
        assert pop.count(V("L")) == 1

    def test_parsed_majority_runs(self):
        prog = parse_program(MAJORITY_TEXT)
        schema = program_schema(prog)
        base = {d.name: d.init for d in prog.variables}
        pop = Population.from_groups(
            schema,
            [
                (dict(base, A=True), 70),
                (dict(base, B=True), 60),
                (base, 70),
            ],
        )
        interp = IdealInterpreter(prog, pop, rng=np.random.default_rng(2))
        interp.run(2)
        assert pop.count(V("YA")) == pop.n  # A wins


class TestProgramErrors:
    def test_missing_header(self):
        with pytest.raises(ParseError):
            parse_program("var L <- on:\nthread T:\n  repeat:\n    L := on")

    def test_empty_source(self):
        with pytest.raises(ParseError):
            parse_program("   \n  \n")

    def test_no_variables(self):
        with pytest.raises(ParseError):
            parse_program("def protocol P\nthread T:\n  repeat:\n    L := on")

    def test_bad_instruction(self):
        source = LEADER_ELECTION_TEXT.replace("L := on", "L <- on")
        with pytest.raises(ParseError):
            parse_program(source)

    def test_empty_ruleset(self):
        source = """
def protocol P
var L <- on:
thread Main:
  repeat:
    execute for >= 2 ln n rounds ruleset:
    L := on
"""
        with pytest.raises(ParseError):
            parse_program(source)

    def test_thread_without_body(self):
        source = "def protocol P\nvar L <- on:\nthread Main:\n"
        with pytest.raises(ParseError):
            parse_program(source)

    def test_error_carries_line_number(self):
        try:
            parse_program(LEADER_ELECTION_TEXT.replace("L := on", "@@@"))
        except ParseError as exc:
            assert "line" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
