"""The simulate() facade and engine registry."""

import numpy as np
import pytest

from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import ArrayEngine, BatchCountEngine, CountEngine, MatchingEngine
from repro.simulate import (
    ENGINE_CHOICES,
    ENGINES,
    default_engine_name,
    make_engine,
    resolve_engine,
    simulate,
)


@pytest.fixture
def epidemic():
    schema = StateSchema()
    schema.flag("I")
    return single_thread(
        "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
    )


def epidemic_population(schema, n, infected=1):
    return Population.from_groups(
        schema, [({"I": True}, infected), ({"I": False}, n - infected)]
    )


class TestRegistry:
    def test_choices_cover_registry(self):
        assert set(ENGINE_CHOICES) == set(ENGINES) | {"auto"}

    def test_names_match_classes(self):
        for name, cls in ENGINES.items():
            assert cls.name == name

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_resolve_each_name(self, name):
        assert resolve_engine(name) is ENGINES[name]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("quantum")

    def test_auto_needs_protocol(self):
        with pytest.raises(ValueError):
            resolve_engine("auto")


class TestAutoSelection:
    def test_small_dense_protocol_uses_batch(self, epidemic):
        assert default_engine_name(epidemic) == "batch"
        assert resolve_engine("auto", epidemic) is BatchCountEngine

    @staticmethod
    def _huge_protocol():
        # 70 flags: packed space 2^70, far past the int64 agent-array limit
        schema = StateSchema()
        for i in range(70):
            schema.flag("b{}".format(i))
        return single_thread(
            "big", schema, [Rule(V("b0"), ~V("b0"), None, {"b0": True})]
        )

    def test_huge_schema_small_support_uses_batch(self):
        proto = self._huge_protocol()
        schema = proto.schema
        pop = Population.from_groups(
            schema, [({"b0": True}, 1), ({"b0": False}, 999)]
        )
        assert schema.num_states >= 2 ** 62
        assert default_engine_name(proto, pop) == "batch"

    def test_huge_schema_no_population_falls_back(self):
        assert default_engine_name(self._huge_protocol()) == "count"


class TestMakeEngine:
    @pytest.mark.parametrize("name,cls", sorted(ENGINES.items()))
    def test_every_name_constructs(self, epidemic, name, cls):
        pop = epidemic_population(epidemic.schema, 100)
        eng = make_engine(epidemic, pop, engine=name, seed=0)
        assert isinstance(eng, cls)
        assert eng.n == 100

    def test_engine_opts_forwarded(self, epidemic):
        pop = epidemic_population(epidemic.schema, 100)
        eng = make_engine(epidemic, pop, engine="batch", seed=0, batch=1)
        assert eng.batch == 1

    def test_seed_reproducible(self, epidemic):
        runs = []
        for _ in range(2):
            pop = epidemic_population(epidemic.schema, 200)
            eng = make_engine(epidemic, pop, engine="count", seed=9)
            eng.run(stop=lambda p: p.all_satisfy(V("I")))
            runs.append(eng.interactions)
        assert runs[0] == runs[1]


class TestSimulate:
    def test_runs_and_returns_engine(self, epidemic):
        pop = epidemic_population(epidemic.schema, 300)
        eng = simulate(
            epidemic, pop, seed=1, stop=lambda p: p.all_satisfy(V("I"))
        )
        assert eng.population.count(V("I")) == 300
        assert eng.rounds > 0

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_all_engines_run(self, epidemic, name):
        pop = epidemic_population(epidemic.schema, 200)
        eng = simulate(epidemic, pop, engine=name, seed=2, rounds=3)
        assert eng.rounds >= 3.0 - 1e-9

    def test_engine_opts(self, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = simulate(
            epidemic, pop, engine="batch", seed=3, rounds=2,
            engine_opts={"accuracy": 0.5},
        )
        assert eng.accuracy == 0.5

    def test_rng_passthrough(self, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        rng = np.random.default_rng(4)
        eng = simulate(epidemic, pop, engine="count", rng=rng, rounds=1)
        assert eng.rng is rng
