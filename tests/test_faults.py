"""Fault injection and the supervised replica pool.

Chaos suite for `repro.faults` + `repro.engine.replicas.supervise`: a
deterministic FaultPlan crashes/hangs/corrupts specific replicas, and the
supervisor must retry on fresh spawned seeds, convert hangs into timeout
records, treat health-guard violations as non-retryable, and leave the
untouched replicas bit-identical.  Resume tests prove an interrupted or
faulted sweep finishes to the same statistics as an uninterrupted one.
"""

import math
import os
import re
import time

import numpy as np
import pytest

from repro import FaultPlan, load_manifest, resume_sweep, run_replicas
from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import (
    SimulationHealthError,
    map_replicas,
    supervise,
)
from repro.engine.replicas import _retry_seed
from repro.faults import (
    ALWAYS,
    CRASH_EXIT_CODE,
    InjectedCrash,
    InjectedHang,
    corrupt_cache_entry,
    corrupt_table,
)
from repro.obs import verify_fingerprint
from repro.workloads import build_workload


def make_epidemic(n=200):
    schema = StateSchema()
    schema.flag("I")
    protocol = single_thread(
        "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
    )
    population = Population.from_groups(
        schema, [({"I": True}, 1), ({"I": False}, n - 1)]
    )
    return protocol, population


def all_infected(pop):
    return pop.all_satisfy(V("I"))


# top-level workers so the pool tests can pickle them
def _double(payload):
    return payload * 2


def _fail_if_negative(payload):
    if payload < 0:
        raise ValueError("bad payload {}".format(payload))
    return payload


def _timeout_if_negative(payload):
    if payload < 0:
        raise TimeoutError("simulated hang for {}".format(payload))
    return payload


def _health_error(payload):
    raise SimulationHealthError("conservation", "batch", 7, [1], "injected")


def _crash_worker(payload):
    if payload == "crash":
        os._exit(CRASH_EXIT_CODE)
    return payload


def _sleep_worker(payload):
    if payload == "sleep":
        time.sleep(30)
    return payload


def _flip_negative(key, base, attempt):
    return abs(base)


class TestFaultPlanSchedule:
    def test_due_counts_failing_attempts(self):
        plan = FaultPlan(crash={3: 1})
        assert plan._due(plan.crash, 3, 0) is True
        assert plan._due(plan.crash, 3, 1) is False
        assert plan._due(plan.crash, 4, 0) is False

    def test_always(self):
        plan = FaultPlan(hang={2: ALWAYS})
        assert all(plan._due(plan.hang, 2, a) for a in range(5))

    def test_touches(self):
        plan = FaultPlan(crash={0: 1}, hang={1: 1}, corrupt_table={2: "nan"})
        assert all(plan.touches(i) for i in range(3))
        assert not plan.touches(3)

    def test_simulated_crash_and_hang_raise(self):
        plan = FaultPlan(crash={0: ALWAYS}, hang={1: ALWAYS}).simulated()
        with pytest.raises(InjectedCrash):
            plan.before_run(0)
        with pytest.raises(InjectedHang):
            plan.before_run(1)
        plan.before_run(2)  # untouched index passes

    def test_injected_hang_is_a_timeout(self):
        assert issubclass(InjectedHang, TimeoutError)


class TestCorruptTable:
    def test_unknown_mode_rejected(self):
        from repro.engine import BatchCountEngine

        protocol, population = make_epidemic()
        eng = BatchCountEngine(protocol, population)
        with pytest.raises(ValueError, match="corruption mode"):
            corrupt_table(eng._ct, "melt")

    def test_corruption_is_a_copy(self):
        from repro.engine import BatchCountEngine

        protocol, population = make_epidemic()
        eng = BatchCountEngine(protocol, population)
        table = eng._ct
        bad = corrupt_table(table, "nan")
        assert np.isnan(bad.p_change_matrix).any()
        assert not np.isnan(table.p_change_matrix).any()
        bad = corrupt_table(table, "drop")
        assert bad.off.sum() == 0
        assert table.off.sum() != 0

    def test_corrupt_cache_entry_empty_dir(self, tmp_path):
        assert corrupt_cache_entry(str(tmp_path)) == []


class TestRetrySeeds:
    def test_disjoint_from_first_attempt_streams(self):
        root = np.random.SeedSequence(5)
        children = root.spawn(4)
        draws = {
            np.random.default_rng(s).integers(1 << 62) for s in children
        }
        for index in range(4):
            for attempt in (1, 2):
                retry = _retry_seed(root, index, attempt)
                assert list(retry.spawn_key) == [index, attempt]
                draws.add(np.random.default_rng(retry).integers(1 << 62))
        assert len(draws) == 4 + 4 * 2  # all streams distinct


class TestSuperviseSerial:
    def test_all_ok(self):
        outcomes = supervise(
            _double, [(k, k) for k in range(4)], processes=1
        )
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert [o.value for o in outcomes] == [0, 2, 4, 6]
        assert all(o.attempts == 1 for o in outcomes)

    def test_retry_recovers(self):
        outcomes = supervise(
            _fail_if_negative, [("a", -5)], processes=1,
            max_retries=2, backoff=0.0, retry_payload=_flip_negative,
        )
        (outcome,) = outcomes
        assert outcome.status == "ok"
        assert outcome.value == 5
        assert outcome.attempts == 2

    def test_retries_exhausted(self):
        outcomes = supervise(
            _fail_if_negative, [("a", -5)], processes=1,
            max_retries=1, backoff=0.0,
        )
        (outcome,) = outcomes
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert "ValueError" in outcome.error

    def test_timeout_error_becomes_timeout_status(self):
        outcomes = supervise(
            _timeout_if_negative, [("a", -1)], processes=1,
            max_retries=0,
        )
        assert outcomes[0].status == "timeout"

    def test_health_error_is_nonretryable(self):
        outcomes = supervise(
            _health_error, [("a", 1)], processes=1,
            max_retries=5, backoff=0.0,
        )
        (outcome,) = outcomes
        assert outcome.status == "failed"
        assert outcome.attempts == 1  # never retried
        assert "conservation" in outcome.error

    def test_on_result_checkpoints(self):
        seen = []
        supervise(
            _double, [(k, k) for k in range(3)], processes=1,
            on_result=seen.append,
        )
        assert [o.key for o in seen] == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            supervise(_double, [], processes=1, max_retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            supervise(_double, [], processes=1, timeout=0.0)


@pytest.mark.slow
class TestSupervisePool:
    def test_pool_matches_serial(self):
        serial = supervise(_double, [(k, k) for k in range(5)], processes=1)
        pooled = supervise(_double, [(k, k) for k in range(5)], processes=2)
        assert [o.value for o in pooled] == [o.value for o in serial]
        assert [o.key for o in pooled] == [o.key for o in serial]

    def test_worker_crash_detected_and_siblings_survive(self):
        outcomes = supervise(
            _crash_worker, [(0, "fine"), (1, "crash"), (2, "also fine")],
            processes=2, max_retries=0,
        )
        assert outcomes[0].status == "ok"
        assert outcomes[1].status == "failed"
        assert "died" in outcomes[1].error
        assert str(CRASH_EXIT_CODE) in outcomes[1].error
        assert outcomes[2].status == "ok"

    def test_crash_retried_to_success(self):
        # the retry payload swaps "crash" for a benign value, so the
        # respawned worker succeeds on attempt 2
        outcomes = supervise(
            _crash_worker, [(0, "crash")], processes=2,
            max_retries=1, backoff=0.0,
            retry_payload=lambda key, base, attempt: "recovered",
        )
        (outcome,) = outcomes
        assert outcome.status == "ok"
        assert outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_hung_worker_hits_the_deadline(self):
        start = time.monotonic()
        outcomes = supervise(
            _sleep_worker, [(0, "fine"), (1, "sleep")], processes=2,
            timeout=1.0, max_retries=0,
        )
        elapsed = time.monotonic() - start
        assert outcomes[0].status == "ok"
        assert outcomes[1].status == "timeout"
        assert "timeout" in outcomes[1].error
        assert elapsed < 20  # terminated, not slept out


class TestRunReplicasWithFaults:
    def test_replicas_must_be_positive(self):
        protocol, population = make_epidemic()
        with pytest.raises(ValueError, match="positive"):
            run_replicas(protocol, population, replicas=0, stop=all_infected)
        with pytest.raises(ValueError, match="positive"):
            map_replicas(_double, 0)

    def test_crash_retried_on_fresh_seed(self):
        protocol, population = make_epidemic()
        kwargs = dict(
            replicas=3, engine="count", seed=7, processes=1,
            stop=all_infected, backoff=0.0,
        )
        clean = run_replicas(protocol, population, **kwargs)
        faulted = run_replicas(
            protocol, population, faults=FaultPlan(crash={1: 1}), **kwargs
        )
        assert [r.status for r in faulted.records] == ["ok"] * 3
        retried = faulted.records[1]
        assert retried.attempts == 2
        assert retried.seed["spawn_key"] == [1, 1]
        assert retried.seed["retry_of"] == [1]
        # untouched replicas are bit-identical to the no-fault run
        for k in (0, 2):
            assert faulted.records[k].interactions == clean.records[k].interactions
            assert "retry_of" not in faulted.records[k].seed

    def test_crash_exhausts_to_failed_record(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=3, engine="count", seed=7,
            processes=1, stop=all_infected, backoff=0.0, max_retries=1,
            faults=FaultPlan(crash={1: ALWAYS}),
        )
        record = rs.records[1]
        assert record.status == "failed"
        assert record.attempts == 2
        assert "InjectedCrash" in record.error
        assert math.isnan(record.rounds)
        assert len(rs.ok) == 2
        summary = rs.summary()
        assert summary.failures == {"failed": 1}
        assert summary.retries == 1  # two attempts = one retry
        assert summary.converged_fraction == 1.0  # over the ok records
        assert "1 failed" in str(summary)

    def test_hang_becomes_timeout_record(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=3, engine="count", seed=7,
            processes=1, stop=all_infected, backoff=0.0, max_retries=0,
            faults=FaultPlan(hang={2: ALWAYS}),
        )
        assert rs.records[2].status == "timeout"
        assert rs.summary().failures == {"timeout": 1}

    def test_corrupt_table_is_nonretryable(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=2, engine="batch", seed=7,
            processes=1, stop=all_infected, backoff=0.0, max_retries=2,
            engine_opts={"guards": True},
            faults=FaultPlan(corrupt_table={0: "nan"}),
        )
        record = rs.records[0]
        assert record.status == "failed"
        assert record.attempts == 1  # deterministic failure: never retried
        assert "finite-probabilities" in record.error
        assert rs.records[1].status == "ok"

    def test_map_replicas_raises_on_failure(self):
        with pytest.raises(RuntimeError, match="ValueError"):
            map_replicas(
                lambda seed: _fail_if_negative(-1), 2, processes=1
            )


class TestResumableSweeps:
    def _sweep(self, tmp_path, faults=None, **overrides):
        workload = build_workload("epidemic", n=120)
        path = str(tmp_path / "run.jsonl")
        kwargs = dict(
            replicas=4, engine="batch", seed=9, processes=1,
            stop=workload.stop, manifest=path,
            manifest_meta={"workload": workload.spec()},
            backoff=0.0, max_retries=0,
        )
        kwargs.update(overrides)
        rs = run_replicas(
            workload.protocol, workload.population, faults=faults, **kwargs
        )
        return workload, path, rs

    def test_resume_is_bit_identical(self, tmp_path):
        _, clean_path, clean = self._sweep(tmp_path / "clean")
        plan = FaultPlan(crash={1: ALWAYS}, hang={2: ALWAYS})
        _, path, faulted = self._sweep(tmp_path / "faulted", faults=plan)
        manifest = load_manifest(path)
        assert manifest.missing_indices() == [1, 2]
        resumed = resume_sweep(path, processes=1)
        assert [r.status for r in resumed.records] == ["ok"] * 4
        assert [r.interactions for r in resumed.records] == [
            r.interactions for r in clean.records
        ]
        # the summaries agree bit-for-bit (same bootstrap resamples)
        # once nondeterministic wall timings are masked out
        def no_walls(summary):
            return re.sub(r"\d+\.\d+s", "_s", str(summary))

        assert no_walls(resumed.summary()) == no_walls(clean.summary())

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        _, path, rs = self._sweep(tmp_path)
        with open(path) as handle:
            lines = handle.readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-1])
            handle.write(lines[-1][: len(lines[-1]) // 2])  # torn write
        manifest = load_manifest(path)
        assert len(manifest) == len(rs) - 1
        assert manifest.missing_indices() == [rs.records[-1].index]
        resumed = resume_sweep(path, processes=1)
        assert [r.interactions for r in resumed.records] == [
            r.interactions for r in rs.records
        ]

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        _, path, _ = self._sweep(tmp_path)
        other = build_workload("leader", n=120)
        manifest = load_manifest(path)
        with pytest.raises(ValueError, match="fingerprint"):
            verify_fingerprint(manifest, other.protocol, other.population)

    def test_manifest_records_failures_and_supervisor(self, tmp_path):
        plan = FaultPlan(crash={0: ALWAYS})
        _, path, _ = self._sweep(
            tmp_path, faults=plan, max_retries=1, timeout=30.0
        )
        manifest = load_manifest(path)
        header = manifest.header
        assert header["supervisor"] == {
            "timeout": 30.0, "max_retries": 1, "backoff": 0.0,
        }
        record = manifest.record(0)
        assert record.status == "failed"
        assert record.attempts == 2
        assert record.seed["retry_of"] == [0]
        assert "InjectedCrash" in record.error
