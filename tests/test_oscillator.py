"""Tests for the DK18 oscillator (Theorem 5.1's qualitative content)."""

import numpy as np
import pytest
from scipy.optimize import brentq

from repro.core import Population, V
from repro.engine import MatchingEngine, MeanFieldSystem, Trace
from repro.oscillator import (
    NUM_SPECIES,
    OSC_VALUES,
    a_min,
    dominant_species,
    extract_oscillations,
    make_oscillator_protocol,
    make_rps_protocol,
    species,
    species_counts,
    strong_value,
    weak_value,
)


def oscillator_population(schema, n, fractions=(0.8, 0.17), n_x=4, seed_strong=True):
    c1 = int(fractions[0] * (n - n_x))
    c2 = int(fractions[1] * (n - n_x))
    c3 = (n - n_x) - c1 - c2
    first = strong_value(0) if seed_strong else weak_value(0)
    return Population.from_groups(
        schema,
        [
            ({"osc": first}, c1),
            ({"osc": weak_value(1)}, c2),
            ({"osc": weak_value(2)}, c3),
            ({"osc": weak_value(0), "X": True}, n_x),
        ],
    )


@pytest.fixture(scope="module")
def protocol():
    return make_oscillator_protocol()


def symmetric_fixed_point(mf, schema):
    iw = [mf.index[schema.pack({"osc": weak_value(i)})] for i in range(3)]
    istr = [mf.index[schema.pack({"osc": strong_value(i)})] for i in range(3)]

    def resid(s):
        y = np.zeros(len(mf.codes))
        for i in range(3):
            y[iw[i]] = (1 - float(s)) / 3
            y[istr[i]] = float(s) / 3
        return float(mf.derivative(y)[istr[0]])

    s_star = brentq(resid, 0.01, 0.99)
    y0 = np.zeros(len(mf.codes))
    for i in range(3):
        y0[iw[i]] = (1 - s_star) / 3
        y0[istr[i]] = s_star / 3
    return s_star, y0


class TestMeanField:
    @pytest.fixture(scope="class")
    def mf(self, protocol):
        schema = protocol.schema
        codes = [schema.pack({"osc": v}) for v in OSC_VALUES]
        return MeanFieldSystem(protocol, codes)

    def test_symmetric_fixed_point_exists(self, mf, protocol):
        s_star, y0 = symmetric_fixed_point(mf, protocol.schema)
        assert 0.2 < s_star < 0.6
        assert np.abs(mf.derivative(y0)).max() < 1e-12

    def test_centre_is_linearly_unstable(self, mf, protocol):
        """The key property behind Theorem 5.1(i): escape in O(log n)."""
        _, y0 = symmetric_fixed_point(mf, protocol.schema)
        eps = 1e-7
        size = len(mf.codes)
        jac = np.zeros((size, size))
        for j in range(size):
            up, down = y0.copy(), y0.copy()
            up[j] += eps
            down[j] -= eps
            jac[:, j] = (mf.derivative(up) - mf.derivative(down)) / (2 * eps)
        eig = np.linalg.eigvals(jac)
        oscillatory = [e for e in eig if abs(e.imag) > 1e-6]
        assert max(e.real for e in oscillatory) > 0.003

    def test_plain_rps_centre_is_neutral(self):
        """Ablation: without the strength levels the centre is not unstable."""
        proto = make_rps_protocol()
        schema = proto.schema
        codes = list(range(3))
        mf = MeanFieldSystem(proto, codes)
        y0 = np.full(3, 1.0 / 3.0)
        assert np.abs(mf.derivative(y0)).max() < 1e-12
        eps = 1e-7
        jac = np.zeros((3, 3))
        for j in range(3):
            up, down = y0.copy(), y0.copy()
            up[j] += eps
            down[j] -= eps
            jac[:, j] = (mf.derivative(up) - mf.derivative(down)) / (2 * eps)
        eig = np.linalg.eigvals(jac)
        assert max(e.real for e in eig) < 1e-6


class TestStochastic:
    def test_oscillates_with_correct_cyclic_order(self, protocol):
        n = 3000
        pop = oscillator_population(protocol.schema, n)
        trace = Trace({"A1": species(0), "A2": species(1), "A3": species(2)})
        eng = MatchingEngine(protocol, pop, rng=np.random.default_rng(7))
        eng.run(rounds=6000, observer=trace, observe_every=4)
        counts = [trace.series(k) for k in ("A1", "A2", "A3")]
        summary = extract_oscillations(trace.times, counts, n, threshold=0.7)
        assert summary.sweeps >= 6
        assert summary.cyclic_order_ok

    def test_amin_stays_small_once_oscillating(self, protocol):
        n = 3000
        pop = oscillator_population(protocol.schema, n)
        eng = MatchingEngine(protocol, pop, rng=np.random.default_rng(8))
        eng.run(rounds=2000)
        values = []
        for _ in range(20):
            eng.run(rounds=200)
            values.append(a_min(eng.population))
        # Theorem 5.1(ii): a_min < n^{1-eps/3} at all times once started
        assert max(values) < n ** 0.85

    def test_reseeding_keeps_all_species_alive(self, protocol):
        n = 2000
        pop = oscillator_population(protocol.schema, n)
        eng = MatchingEngine(protocol, pop, rng=np.random.default_rng(9))
        eng.run(rounds=4000)
        for window in range(6):
            eng.run(rounds=500)
            counts = species_counts(eng.population)
            # every species recurs: none stays extinct across a window
            assert min(counts) >= 0 and sum(c > 0 for c in counts) >= 2

    def test_x_count_is_preserved_by_oscillator(self, protocol):
        pop = oscillator_population(protocol.schema, 1000, n_x=7)
        eng = MatchingEngine(protocol, pop, rng=np.random.default_rng(10))
        eng.run(rounds=500)
        assert eng.population.count(V("X")) == 7

    def test_dominant_species_helper(self, protocol):
        pop = Population.from_groups(
            protocol.schema,
            [({"osc": weak_value(1)}, 95), ({"osc": weak_value(2)}, 5)],
        )
        assert dominant_species(pop) == 1
        balanced = Population.from_groups(
            protocol.schema,
            [({"osc": weak_value(0)}, 50), ({"osc": weak_value(1)}, 50)],
        )
        assert dominant_species(balanced) is None


class TestAnalysisHelpers:
    def test_extract_oscillations_synthetic(self):
        times = np.arange(0.0, 90.0)
        counts = np.zeros((3, 90))
        n = 100
        for step in range(90):
            counts[(step // 30) % 3, step] = 90
            counts[((step // 30) + 1) % 3, step] = 10
        summary = extract_oscillations(times, counts, n, threshold=0.7)
        assert summary.dominance_species == [0, 1, 2]
        assert summary.cyclic_order_ok

    def test_periods_from_repeat(self):
        times = np.arange(0.0, 180.0)
        counts = np.zeros((3, 180))
        n = 100
        for step in range(180):
            counts[(step // 30) % 3, step] = 90
        summary = extract_oscillations(times, counts, n, threshold=0.7)
        periods = summary.periods
        assert len(periods) >= 1
        assert np.allclose(periods, 90.0)
