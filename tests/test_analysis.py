"""Tests for the analysis toolkit (fits, stats, trace)."""

import numpy as np
import pytest

from repro.analysis import (
    doubling_ratio,
    fit_polylog,
    fit_power,
    fit_stretched_exponential,
    polylog_degree_estimate,
    print_table,
    success_rate,
    summarize,
)
from repro.core import Population, StateSchema, V
from repro.engine import Trace


class TestPowerFits:
    def test_exact_power_law(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x ** 2
        fit = fit_power(x, y)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power([1, 2, 4], [2, 4, 8])
        assert fit.predict(np.array([8.0]))[0] == pytest.approx(16.0)

    def test_noisy_fit_reasonable(self):
        rng = np.random.default_rng(0)
        x = np.linspace(1, 100, 50)
        y = 5 * x ** 1.5 * np.exp(rng.normal(0, 0.05, 50))
        fit = fit_power(x, y)
        assert abs(fit.exponent - 1.5) < 0.1

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power([1.0], [1.0])

    def test_nonpositive_filtered(self):
        fit = fit_power([0, 1, 2, 4], [0, 2, 4, 8])
        assert fit.exponent == pytest.approx(1.0)

    def test_polylog_fit(self):
        ns = np.array([100, 1000, 10000, 100000], dtype=float)
        times = 7.0 * np.log(ns) ** 2
        fit = fit_polylog(ns, times)
        assert fit.exponent == pytest.approx(2.0, abs=1e-6)

    def test_polylog_degree_estimate(self):
        ns = [100, 100000]
        times = [np.log(100) ** 3, np.log(100000) ** 3]
        assert polylog_degree_estimate(ns, times) == pytest.approx(3.0)

    def test_stretched_exponential(self):
        n = 10000.0
        t = np.linspace(1, 400, 100)
        y = n * np.exp(-0.8 * t ** 0.5)
        alpha, c = fit_stretched_exponential(t, y, n)
        assert alpha == pytest.approx(0.5, abs=0.01)
        assert c == pytest.approx(0.8, abs=0.05)

    def test_doubling_ratio(self):
        ratios = doubling_ratio([1, 2, 4], [10.0, 20.0, 40.0])
        assert np.allclose(ratios, 2.0)


class TestStats:
    def test_summary_median(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
        assert s.median == 3.0
        assert s.low <= s.median <= s.high

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_success_rate(self):
        assert success_rate([True, True, False, False]) == 0.5

    def test_print_table_alignment(self):
        text = print_table(["n", "rounds"], [[100, 12.5], [100000, 99.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) <= 2  # consistent width

    def test_summary_str(self):
        assert "[" in str(summarize([1.0, 2.0, 3.0]))


class TestTrace:
    def test_records_formula_and_callable(self):
        schema = StateSchema()
        schema.flag("A")
        pop = Population.from_groups(schema, [({"A": True}, 3), ({}, 7)])
        trace = Trace({"A": V("A"), "n": lambda p: p.n})
        trace(0.0, pop)
        trace(1.0, pop)
        assert list(trace.times) == [0.0, 1.0]
        assert list(trace.series("A")) == [3.0, 3.0]
        assert trace.last("n") == 10.0

    def test_empty_last_rejected(self):
        trace = Trace({"x": lambda p: 0.0})
        with pytest.raises(ValueError):
            trace.last("x")

    def test_as_dict(self):
        schema = StateSchema()
        schema.flag("A")
        pop = Population.uniform(schema, 4, {"A": True})
        trace = Trace({"A": V("A")})
        trace(0.0, pop)
        data = trace.as_dict()
        assert set(data) == {"time", "A"}
