"""BGHKPU engine: registry wiring, exactness, fidelity, stats, fallbacks.

The alias-table batch engine must be a drop-in member of the engine
registry (config round-trip, CLI name, replica runner), agree with the
``batch`` engine distributionally (pooled KS on the leader-fight
convergence times and on the oscillator observer grid, the repo's
standard equivalence gates), step the endgame exactly (events = n − 1
on the leader fight), and surface its collision/epoch counters as
first-class :class:`EngineStats` fields that the replica tally
aggregates.
"""

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.analysis import aggregate_convergence
from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import BGHKPUEngine, BatchCountEngine, Trace
from repro.engine.config import EngineConfig
from repro.engine.health import HealthMonitor, SimulationHealthError
from repro.simulate import engine_names, make_engine, resolve_engine

KS_ALPHA = 0.001


def leader_fight():
    schema = StateSchema()
    schema.flag("L")
    protocol = single_thread(
        "leader-fight", schema, [Rule(V("L"), V("L"), None, {"L": False})]
    )
    return protocol, schema


def leader_population(schema, n):
    return Population.uniform(schema, n, {"L": True})


def run_leader(engine, n, seed, **opts):
    protocol, schema = leader_fight()
    pop = leader_population(schema, n)
    cfg = EngineConfig(engine=engine, **opts)
    eng = make_engine(protocol, pop, engine=cfg, rng=np.random.default_rng(seed))
    eng.run(stop=lambda p: p.count(V("L")) == 1)
    return eng, pop


class TestRegistry:
    def test_name_registered(self):
        assert "bghkpu" in engine_names()
        assert resolve_engine("bghkpu") is BGHKPUEngine

    def test_config_round_trip(self):
        cfg = EngineConfig(
            engine="bghkpu", collision_frac=0.15, alias_rebuild_tol=0.02
        )
        assert EngineConfig.from_dict(cfg.as_dict()) == cfg

    def test_kwargs_projection(self):
        cfg = EngineConfig(
            engine="bghkpu", collision_frac=0.15, alias_rebuild_tol=0.02
        )
        assert cfg.engine_kwargs(BGHKPUEngine) == {
            "collision_frac": 0.15, "alias_rebuild_tol": 0.02,
        }
        # foreign engines never see the bghkpu-only knobs
        assert cfg.engine_kwargs(BatchCountEngine) == {}

    def test_knob_validation(self):
        protocol, schema = leader_fight()
        pop = leader_population(schema, 100)
        with pytest.raises(ValueError, match="collision_frac"):
            BGHKPUEngine(protocol, pop, collision_frac=0.0)
        with pytest.raises(ValueError, match="collision_frac"):
            BGHKPUEngine(protocol, pop, collision_frac=1.5)
        with pytest.raises(ValueError, match="alias_rebuild_tol"):
            BGHKPUEngine(protocol, pop, alias_rebuild_tol=-0.1)
        with pytest.raises(ValueError, match="alias_rebuild_tol"):
            BGHKPUEngine(protocol, pop, alias_rebuild_tol=1.01)

    def test_dense_knob_validation(self):
        protocol, schema = leader_fight()
        pop = leader_population(schema, 100)
        with pytest.raises(ValueError, match="dense_top_k"):
            BGHKPUEngine(protocol, pop, dense_top_k=-1)
        with pytest.raises(ValueError, match="alias_patch_frac"):
            BGHKPUEngine(protocol, pop, alias_patch_frac=-0.5)
        with pytest.raises(ValueError, match="alias_patch_frac"):
            BGHKPUEngine(protocol, pop, alias_patch_frac=1.5)

    def test_config_round_trip_dense_knobs(self):
        cfg = EngineConfig(
            engine="bghkpu", dense_top_k=128, alias_patch_frac=0.1,
            batch_autotune=False,
        )
        assert EngineConfig.from_dict(cfg.as_dict()) == cfg

    def test_kwargs_projection_dense_knobs(self):
        cfg = EngineConfig(
            engine="bghkpu", dense_top_k=128, alias_patch_frac=0.1,
            batch_autotune=False,
        )
        assert cfg.engine_kwargs(BGHKPUEngine) == {
            "dense_top_k": 128,
            "alias_patch_frac": 0.1,
            "batch_autotune": False,
        }
        # foreign engines never see the bghkpu-only knobs
        assert cfg.engine_kwargs(BatchCountEngine) == {}


class TestExactness:
    @pytest.mark.parametrize("n", [100, 5_000, 200_000])
    def test_leader_fight_event_count_exact(self, n):
        """Every effective event kills exactly one leader: events = n − 1."""
        eng, pop = run_leader("bghkpu", n, seed=11)
        assert pop.count(V("L")) == 1
        assert eng.events == n - 1
        assert eng.fallbacks == 0

    def test_conservation_under_guards(self):
        eng, pop = run_leader("bghkpu", 20_000, seed=5, guards=True)
        assert pop.n == 20_000
        assert pop.count(V("L")) == 1

    def test_deterministic_in_seed(self):
        a, _ = run_leader("bghkpu", 30_000, seed=123)
        b, _ = run_leader("bghkpu", 30_000, seed=123)
        assert a.interactions == b.interactions
        assert a.events == b.events
        assert a.batches == b.batches
        assert a.collision_events == b.collision_events

    def test_batch_one_delegates_to_exact_path(self):
        a, _ = run_leader("bghkpu", 500, seed=7, batch=1)
        b, _ = run_leader("batch", 500, seed=7, batch=1)
        assert a.interactions == b.interactions
        assert a.events == b.events == 499

    def test_batch_one_bit_identity_with_dense_knobs(self):
        """batch=1 stays on the exact path with every dense knob set."""
        a, _ = run_leader(
            "bghkpu", 500, seed=7, batch=1,
            dense_top_k=512, alias_patch_frac=0.25, batch_autotune=True,
        )
        b, _ = run_leader("batch", 500, seed=7, batch=1)
        assert a.interactions == b.interactions
        assert a.events == b.events == 499

    def test_compile_limit_fallback(self):
        """An uncompilable closure falls back to the parent wholesale."""
        eng, pop = run_leader("bghkpu", 2_000, seed=3, compile_limit=1)
        assert pop.count(V("L")) == 1
        assert eng.events == 1_999

    def test_silent_configuration_fast_forwards(self):
        protocol, schema = leader_fight()
        pop = leader_population(schema, 1_000)
        eng = make_engine(
            protocol, pop, engine="bghkpu", rng=np.random.default_rng(0)
        )
        eng.run(stop=lambda p: p.count(V("L")) == 1)
        assert pop.count(V("L")) == 1
        before = eng.interactions
        eng.run(interactions=10**9)  # nothing left to fire
        assert eng.interactions == before + 10**9
        assert eng.events == 999


class TestObserverGrid:
    def test_grid_matches_batch_engine(self):
        protocol, schema = leader_fight()

        def trace_of(engine):
            pop = leader_population(schema, 4_000)
            trace = Trace({"L": V("L")})
            eng = make_engine(
                protocol, pop, engine=engine, rng=np.random.default_rng(2)
            )
            eng.run(rounds=10.0, observer=trace, observe_every=0.5)
            return trace

        batch, bghkpu = trace_of("batch"), trace_of("bghkpu")
        np.testing.assert_array_equal(batch.times, bghkpu.times)


class TestStats:
    def test_counters_surface(self):
        eng, _ = run_leader("bghkpu", 50_000, seed=9)
        assert eng.collision_events > 0
        assert eng.alias_rebuilds >= 1
        assert eng.alias_build_seconds >= 0.0
        stats = eng.stats.as_dict()
        assert stats["engine"] == "bghkpu"
        assert stats["collision_events"] == eng.collision_events
        assert stats["alias_rebuilds"] == eng.alias_rebuilds
        assert stats["alias_build_seconds"] == pytest.approx(
            eng.alias_build_seconds
        )

    def test_tally_aggregates_new_counters(self):
        records = []
        for seed in (1, 2):
            eng, _ = run_leader("bghkpu", 20_000, seed=seed)
            records.append(
                {
                    "rounds": eng.rounds,
                    "interactions": eng.interactions,
                    "wall": 0.1,
                    "converged": True,
                    "stats": eng.stats.as_dict(),
                }
            )
        agg = aggregate_convergence(records)
        tally = agg.engines["bghkpu"]
        assert tally.replicas == 2
        assert tally.counters["collision_events"] == sum(
            r["stats"]["collision_events"] for r in records
        )
        assert tally.counters["alias_rebuilds"] == sum(
            r["stats"]["alias_rebuilds"] for r in records
        )
        assert agg.interactions_total == sum(
            r["interactions"] for r in records
        )
        assert isinstance(agg.interactions_total, int)

    def test_interactions_headroom_guard(self):
        protocol, schema = leader_fight()
        pop = leader_population(schema, 100)
        eng = make_engine(
            protocol, pop, engine="bghkpu", rng=np.random.default_rng(0)
        )
        eng.run(interactions=50)
        monitor = HealthMonitor()
        monitor.attach(eng)
        monitor.after_batch(eng)  # sane counter passes
        eng.interactions = 2**62 + 1
        with pytest.raises(SimulationHealthError, match="int64-headroom"):
            monitor.after_batch(eng)


class TestKSEquivalence:
    """The repo's standard cross-engine distributional gates."""

    def test_leader_fight_convergence_times(self):
        n, reps = 2_000, 60
        pooled = {}
        for engine in ("batch", "bghkpu"):
            rounds = np.empty(reps)
            for r in range(reps):
                eng, _ = run_leader(engine, n, seed=1000 + r)
                rounds[r] = eng.rounds
            pooled[engine] = rounds
        assert ks_2samp(pooled["batch"], pooled["bghkpu"]).pvalue > KS_ALPHA

    def test_oscillator_observer_series(self):
        from repro.oscillator import make_oscillator_protocol, species, weak_value

        protocol = make_oscillator_protocol()
        n, third = 600, (600 - 3) // 3

        def trace_of(engine, seed):
            pop = Population.from_groups(
                protocol.schema,
                [
                    ({"osc": weak_value(0)}, third + (n - 3) - 3 * third),
                    ({"osc": weak_value(1)}, third),
                    ({"osc": weak_value(2)}, third),
                    ({"osc": weak_value(0), "X": True}, 3),
                ],
            )
            trace = Trace(
                {"A1": species(0), "A2": species(1), "A3": species(2)}
            )
            eng = make_engine(
                protocol, pop, engine=engine, rng=np.random.default_rng(seed)
            )
            eng.run(rounds=30.0, observer=trace)
            return trace

        pooled = {"batch": [], "bghkpu": []}
        for engine in pooled:
            for seed in range(10):
                trace = trace_of(engine, 300 + seed)
                for name in ("A1", "A2", "A3"):
                    pooled[engine].append(trace.series(name))
        batch = np.concatenate(pooled["batch"])
        bghkpu = np.concatenate(pooled["bghkpu"])
        assert ks_2samp(batch, bghkpu).pvalue > KS_ALPHA

    def test_oscillator_observer_series_hybrid_forced(self):
        """E3 with the hybrid split forced on (the grid is too small to
        engage it at the default ``dense_top_k``): same pooled KS gate."""
        from repro.oscillator import make_oscillator_protocol, species, weak_value

        protocol = make_oscillator_protocol()
        n, third = 600, (600 - 3) // 3
        dense_cfg = EngineConfig(
            engine="bghkpu", dense_top_k=16, alias_patch_frac=0.5
        )

        def trace_of(engine, seed):
            pop = Population.from_groups(
                protocol.schema,
                [
                    ({"osc": weak_value(0)}, third + (n - 3) - 3 * third),
                    ({"osc": weak_value(1)}, third),
                    ({"osc": weak_value(2)}, third),
                    ({"osc": weak_value(0), "X": True}, 3),
                ],
            )
            trace = Trace(
                {"A1": species(0), "A2": species(1), "A3": species(2)}
            )
            eng = make_engine(
                protocol, pop, engine=engine, rng=np.random.default_rng(seed)
            )
            eng.run(rounds=30.0, observer=trace)
            return trace, eng

        pooled = {"batch": [], "dense": []}
        hybrid_engaged = False
        for key, engine in (("batch", "batch"), ("dense", dense_cfg)):
            for seed in range(10):
                trace, eng = trace_of(engine, 700 + seed)
                if key == "dense" and eng._sampler is not None:
                    hybrid_engaged |= eng._sampler.heavy_cells is not None
                for name in ("A1", "A2", "A3"):
                    pooled[key].append(trace.series(name))
        assert hybrid_engaged  # the forced top-K partition actually ran
        batch = np.concatenate(pooled["batch"])
        dense = np.concatenate(pooled["dense"])
        assert ks_2samp(batch, dense).pvalue > KS_ALPHA

    def test_phase_clock_observer_series_dense_defaults(self):
        """E4 composed oscillator + clock vs ``batch``, knobs at defaults.

        The 168-state composed protocol is the dense-support shape the
        hybrid sampler targets; the pooled KS over the species observer
        series is the standard equivalence gate.
        """
        from repro.oscillator import species
        from repro.workloads import build_workload

        def trace_of(engine, seed):
            wl = build_workload("clock", n=2_000)
            trace = Trace(
                {"A1": species(0), "A2": species(1), "A3": species(2)}
            )
            eng = make_engine(
                wl.protocol, wl.population, engine=engine,
                rng=np.random.default_rng(seed),
            )
            eng.run(rounds=20.0, observer=trace)
            return trace

        pooled = {"batch": [], "bghkpu": []}
        for engine in pooled:
            for seed in range(8):
                trace = trace_of(engine, 500 + seed)
                for name in ("A1", "A2", "A3"):
                    pooled[engine].append(trace.series(name))
        batch = np.concatenate(pooled["batch"])
        bghkpu = np.concatenate(pooled["bghkpu"])
        assert ks_2samp(batch, bghkpu).pvalue > KS_ALPHA
