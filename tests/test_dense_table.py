"""Statistical and structural tests for the dense transition table."""

import numpy as np
import pytest

from repro.core import Rule, StateSchema, V, single_thread
from repro.core.rules import Branch  # noqa: F401 (used in fixtures)
from repro.engine.dense import DENSE_STATE_LIMIT, DenseTable, make_table, supports_dense
from repro.engine.table import LazyTable


@pytest.fixture
def coin_protocol():
    """A protocol with a three-way probabilistic outcome."""
    schema = StateSchema()
    schema.enum("x", 4)
    rule = Rule(
        V("x", 0),
        None,
        branches=[
            Branch(0.5, {"x": 1}),
            Branch(0.3, {"x": 2}),
            Branch(0.2, {"x": 3}),
        ],
    )
    return single_thread("coin", schema, [rule])


class TestSelection:
    def test_small_schema_gets_dense(self):
        schema = StateSchema()
        schema.flag("A")
        proto = single_thread("p", schema, [Rule(V("A"), None, {"A": False})])
        assert supports_dense(proto)
        assert isinstance(make_table(proto), DenseTable)

    def test_large_schema_gets_lazy(self):
        schema = StateSchema()
        for i in range(4):
            schema.enum("e{}".format(i), 12)
        proto = single_thread(
            "p", schema, [Rule(V("e0", 0), None, {"e0": 1})]
        )
        assert not supports_dense(proto)
        assert isinstance(make_table(proto), LazyTable)

    def test_dense_rejects_oversized(self, coin_protocol):
        schema = StateSchema()
        schema.enum("big", DENSE_STATE_LIMIT + 1)
        proto = single_thread("p", schema, [Rule(V("big", 0), None, {"big": 1})])
        with pytest.raises(ValueError):
            DenseTable(proto)


class TestOutcomeSampling:
    def test_apply_matches_branch_distribution(self, coin_protocol):
        """Chi-square-style check of the vectorized outcome sampler."""
        table = DenseTable(coin_protocol)
        rng = np.random.default_rng(0)
        trials = 30000
        agents = np.zeros(2 * trials, dtype=np.int64)
        idx_a = np.arange(0, 2 * trials, 2)
        idx_b = np.arange(1, 2 * trials, 2)
        table.apply(agents, idx_a, idx_b, rng)
        outcomes = agents[idx_a]
        fractions = np.bincount(outcomes, minlength=4) / trials
        assert fractions[1] == pytest.approx(0.5, abs=0.02)
        assert fractions[2] == pytest.approx(0.3, abs=0.02)
        assert fractions[3] == pytest.approx(0.2, abs=0.02)

    def test_scalar_interface_agrees_with_lazy(self, coin_protocol):
        dense = DenseTable(coin_protocol)
        lazy = LazyTable(coin_protocol)
        for a in range(4):
            for b in range(4):
                d = dense.outcomes(a, b)
                l = lazy.outcomes(a, b)
                assert d.p_change == pytest.approx(l.p_change)
                assert sorted(zip(d.codes_a, d.codes_b)) == sorted(
                    zip(l.codes_a, l.codes_b)
                )

    def test_lazy_fill_only_touches_used_pairs(self, coin_protocol):
        table = DenseTable(coin_protocol)
        rng = np.random.default_rng(1)
        agents = np.zeros(4, dtype=np.int64)
        table.apply(agents, np.array([0]), np.array([1]), rng)
        assert table.misses == 1  # only the (0, 0) pair was computed

    def test_outcome_growth(self):
        """Tables grow their outcome arrays when a pair has many branches."""
        from repro.core.rules import Branch  # noqa: F401 (used in fixtures)

        schema = StateSchema()
        schema.enum("x", 8)
        rule = Rule(
            V("x", 0),
            None,
            branches=[Branch(1.0 / 7.0, {"x": i}) for i in range(1, 8)],
        )
        proto = single_thread("many", schema, [rule])
        table = DenseTable(proto, max_outcomes=2)
        entry = table.outcomes(0, 0)
        assert len(entry) == 7
        rng = np.random.default_rng(2)
        agents = np.zeros(64, dtype=np.int64)
        table.apply(agents, np.arange(0, 64, 2), np.arange(1, 64, 2), rng)
        assert set(np.unique(agents[np.arange(0, 64, 2)])) <= set(range(8))
        assert (agents[np.arange(0, 64, 2)] > 0).all()
