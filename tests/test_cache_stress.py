"""Concurrent-writer hardening of the compiled-table ``.npz`` cache.

The simulation service turns the on-disk table cache into a shared
cross-request resource, so this suite stresses exactly the scenarios that
setup creates: several processes compiling/saving the same fingerprint
into one directory at once (atomic publish, no torn reads), corrupt or
truncated entries falling back to a recompile with
``cache_status="corrupt"``, and concurrent same-protocol requests in one
process compiling only once behind the per-fingerprint lock.
"""

import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.engine import compiled
from repro.engine.compiled import (
    CompiledTable,
    clear_memo,
    compile_table,
    protocol_fingerprint,
)
from repro.workloads import build_workload

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

STRESS_SCRIPT = """
import sys
from repro.engine.compiled import clear_memo, compile_table
from repro.workloads import build_workload

cache_dir, rounds = sys.argv[1], int(sys.argv[2])
wl = build_workload("epidemic", n=40)
statuses = []
for _ in range(rounds):
    clear_memo()  # force the disk path every round
    table = compile_table(
        wl.protocol, wl.population.counts.keys(), cache=cache_dir
    )
    statuses.append(table.cache_status)
    table.save(cache_dir)  # hammer the writer while the peer reads
print(",".join(statuses))
"""


def epidemic():
    wl = build_workload("epidemic", n=40)
    return wl.protocol, wl.population


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_memo()
    yield
    clear_memo()


class TestTwoProcessStress:
    def test_concurrent_compile_and_save(self, tmp_path):
        cache_dir = str(tmp_path)
        env = dict(os.environ, PYTHONPATH=SRC)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", STRESS_SCRIPT, cache_dir, "25"],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
            )
            for _ in range(2)
        ]
        outs = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            outs.append(out.strip().split(","))

        # every round produced a usable table, never an exception; a racer
        # may legitimately see a miss (it beat the writer) but never junk
        for statuses in outs:
            assert len(statuses) == 25
            assert set(statuses) <= {"miss", "hit", "corrupt"}
        # at least one process read the other's published entry
        assert any("hit" in statuses for statuses in outs)

        # the surviving entry is whole: it loads, validates, and matches a
        # from-scratch compile bit for bit
        protocol, population = epidemic()
        fingerprint = protocol_fingerprint(protocol, population.counts.keys())
        assert os.path.exists(os.path.join(cache_dir, fingerprint + ".npz"))
        loaded = CompiledTable.load(protocol, fingerprint, cache_dir)
        assert loaded is not None
        fresh = CompiledTable.from_protocol(protocol, population.counts.keys())
        np.testing.assert_array_equal(loaded.codes, fresh.codes)
        np.testing.assert_array_equal(loaded.off, fresh.off)
        np.testing.assert_array_equal(loaded.out_p, fresh.out_p)
        np.testing.assert_array_equal(
            loaded.p_change_matrix, fresh.p_change_matrix
        )


class TestCorruptEntries:
    def test_truncated_entry_recompiles_as_corrupt(self, tmp_path):
        cache_dir = str(tmp_path)
        protocol, population = epidemic()
        first = compile_table(
            protocol, population.counts.keys(), cache=cache_dir
        )
        assert first.cache_status == "miss"
        path = os.path.join(cache_dir, first.fingerprint + ".npz")
        with open(path, "rb") as fh:
            head = fh.read(16)
        with open(path, "wb") as fh:
            fh.write(head)  # torn write: zip header survives, payload gone

        clear_memo()
        table = compile_table(
            protocol, population.counts.keys(), cache=cache_dir
        )
        assert table.cache_status == "corrupt"
        assert table.cache_corrupt == 1
        # the poisoned entry was replaced by a healthy one
        clear_memo()
        again = compile_table(
            protocol, population.counts.keys(), cache=cache_dir
        )
        assert again.cache_status == "hit"

    def test_valid_zip_with_broken_arrays_is_corrupt(self, tmp_path):
        # a torn write can leave a *readable* npz whose arrays lie; the
        # loader's CSR validation must reject it instead of handing the
        # engines nonsense offsets
        cache_dir = str(tmp_path)
        protocol, population = epidemic()
        first = compile_table(
            protocol, population.counts.keys(), cache=cache_dir
        )
        path = os.path.join(cache_dir, first.fingerprint + ".npz")

        def poison():
            np.savez(
                path.replace(".npz", ""),
                codes=first.codes,
                p_change=first.p_change_matrix,
                off=first.off,
                out_a=first.out_a[:-1],  # truncated relative to off[-1]
                out_b=first.out_b,
                out_p=first.out_p,
            )

        poison()
        assert CompiledTable.load(protocol, first.fingerprint, cache_dir) is None
        assert not os.path.exists(path)  # poisoned entry was unlinked

        poison()
        clear_memo()
        table = compile_table(
            protocol, population.counts.keys(), cache=cache_dir
        )
        assert table.cache_status == "corrupt"

    def test_validate_rejects_nonmonotone_offsets(self):
        protocol, population = epidemic()
        table = CompiledTable.from_protocol(protocol, population.counts.keys())
        table._validate_arrays()  # healthy table passes
        table.off = table.off[::-1].copy()
        with pytest.raises(ValueError):
            table._validate_arrays()


class TestCompileOnceLock:
    def test_concurrent_threads_share_one_compile(self, tmp_path, monkeypatch):
        protocol, population = epidemic()
        compiles = []
        gate = threading.Event()
        original = CompiledTable.from_protocol.__func__

        def counted(cls, *args, **kwargs):
            compiles.append(threading.get_ident())
            gate.wait(1.0)  # hold the lock so every thread really queues
            return original(cls, *args, **kwargs)

        monkeypatch.setattr(
            CompiledTable, "from_protocol", classmethod(counted)
        )

        results = [None] * 8
        errors = []

        def worker(slot):
            try:
                results[slot] = compile_table(
                    protocol, population.counts.keys(), cache=str(tmp_path)
                )
            except Exception as exc:  # pragma: no cover - diagnostic only
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(8)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(compiles) == 1, "same-fingerprint requests must compile once"
        assert all(r is not None for r in results)
        fingerprints = {r.fingerprint for r in results}
        assert len(fingerprints) == 1

    def test_distinct_fingerprints_get_distinct_locks(self):
        a = compiled._fingerprint_lock("aa")
        b = compiled._fingerprint_lock("bb")
        assert a is not b
        assert compiled._fingerprint_lock("aa") is a
