"""Array-backend registry + kernel parity tests.

The backend contract (see docs/ENGINES.md) is that every random draw
happens on the *host* numpy generator regardless of backend, so the
NumPy backend must be bit-identical to the pre-refactor engines and any
registered backend must reproduce the same sample paths.  The golden
numbers below were captured from the engines *before* the backend
abstraction was introduced (oscillator E3 workload, fixed seeds).
"""

import numpy as np
import pytest

from repro.core import Population
from repro.engine import BatchCountEngine, EnsembleEngine
from repro.engine.backend import (
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
)
from repro.engine import backend as backend_mod
from repro.oscillator import make_oscillator_protocol, species, weak_value


def _oscillator_population(schema, n, n_x=3):
    third = (n - n_x) // 3
    return Population.from_groups(
        schema,
        [
            ({"osc": weak_value(0)}, third + (n - n_x) - 3 * third),
            ({"osc": weak_value(1)}, third),
            ({"osc": weak_value(2)}, third),
            ({"osc": weak_value(0), "X": True}, n_x),
        ],
    )


# -- registry resolution -----------------------------------------------------


def test_default_backend_is_numpy():
    xp = get_backend()
    assert isinstance(xp, ArrayBackend)
    assert xp.name == "numpy"
    # instances are cached per name
    assert get_backend("numpy") is xp


def test_backend_instance_passes_through():
    xp = ArrayBackend()
    assert get_backend(xp) is xp


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(backend_mod.BACKEND_ENV, "numpy")
    assert get_backend().name == "numpy"
    monkeypatch.setenv(backend_mod.BACKEND_ENV, "definitely-not-registered")
    with pytest.raises(ValueError):
        get_backend()


def test_explicit_arg_beats_env(monkeypatch):
    monkeypatch.setenv(backend_mod.BACKEND_ENV, "definitely-not-registered")
    assert get_backend("numpy").name == "numpy"


def test_unknown_backend_lists_registered_names():
    with pytest.raises(ValueError) as excinfo:
        get_backend("nope")
    message = str(excinfo.value)
    for name in backend_names():
        assert name in message


def test_register_backend(monkeypatch):
    class Mirror(ArrayBackend):
        name = "mirror"

    monkeypatch.setitem(backend_mod._FACTORIES, "mirror", Mirror)
    monkeypatch.delitem(backend_mod._INSTANCES, "mirror", raising=False)
    assert "mirror" in backend_names()
    assert get_backend("mirror").name == "mirror"
    assert "mirror" in available_backends()


def test_register_backend_public_api():
    class Transient(ArrayBackend):
        name = "transient"

    register_backend("transient", Transient)
    try:
        assert get_backend("transient").name == "transient"
    finally:
        del backend_mod._FACTORIES["transient"]
        backend_mod._INSTANCES.pop("transient", None)


def test_available_backends_subset_and_numpy_present():
    avail = available_backends()
    assert set(avail) <= set(backend_names())
    assert "numpy" in avail


def test_unavailable_backend_raises_with_hint():
    for name in ("cupy", "jax"):
        if name in available_backends():
            continue  # actually installed on this machine: nothing to check
        with pytest.raises(BackendUnavailableError) as excinfo:
            get_backend(name)
        assert name in str(excinfo.value)


# -- NumPy backend bit-identity against pre-refactor goldens -----------------

#: EnsembleEngine(oscillator, n=1200, rows=8, seed 12345, cache=None),
#: run(rounds=12.0) — captured before the backend abstraction existed.
GOLDEN_ENSEMBLE = {
    "events": 5453,
    "batches": 192,
    "row_interactions": 14400,
    "species": [
        [416, 387, 394],
        [413, 379, 405],
        [397, 386, 414],
        [413, 412, 372],
        [381, 415, 401],
        [408, 415, 374],
        [403, 404, 390],
        [390, 396, 411],
    ],
}

#: BatchCountEngine(oscillator, n=5000, seed 777, cache=None),
#: run(rounds=15.0) — same provenance.
GOLDEN_BATCH = {
    "interactions": 75000,
    "events": 3514,
    "batches": 30,
    "species": [1676, 1651, 1670],
}


def test_ensemble_numpy_backend_bit_identical_to_prerefactor():
    protocol = make_oscillator_protocol()
    eng = EnsembleEngine(
        protocol,
        _oscillator_population(protocol.schema, 1200),
        rng=np.random.default_rng(12345),
        rows=8,
        cache=None,
        backend="numpy",
    )
    eng.run(rounds=12.0)
    assert eng.events == GOLDEN_ENSEMBLE["events"]
    assert eng.batches == GOLDEN_ENSEMBLE["batches"]
    for r in range(8):
        assert eng.row_interactions_of(r) == GOLDEN_ENSEMBLE["row_interactions"]
        pop = eng.row_population(r)
        got = [pop.count(species(i)) for i in range(3)]
        assert got == GOLDEN_ENSEMBLE["species"][r]
    assert eng.row_stats(0).backend == "numpy"


def test_batch_numpy_backend_bit_identical_to_prerefactor():
    protocol = make_oscillator_protocol()
    eng = BatchCountEngine(
        protocol,
        _oscillator_population(protocol.schema, 5000),
        rng=np.random.default_rng(777),
        cache=None,
        backend="numpy",
    )
    eng.run(rounds=15.0)
    assert eng.interactions == GOLDEN_BATCH["interactions"]
    assert eng.events == GOLDEN_BATCH["events"]
    assert eng.batches == GOLDEN_BATCH["batches"]
    got = [eng.population.count(species(i)) for i in range(3)]
    assert got == GOLDEN_BATCH["species"]


def test_rows1_batch1_matches_solo_count_engine():
    """A one-row batch=1 ensemble is bit-identical to a solo CountEngine."""
    from repro.engine import CountEngine

    protocol = make_oscillator_protocol()
    seed = np.random.SeedSequence(42, spawn_key=(0,))
    ens = EnsembleEngine(
        protocol,
        _oscillator_population(protocol.schema, 900),
        rng=np.random.default_rng(42),
        rows=1,
        row_rngs=[np.random.default_rng(seed)],
        cache=None,
        batch=1,
        backend="numpy",
    )
    ens.run(rounds=10.0)
    solo = CountEngine(
        protocol,
        _oscillator_population(protocol.schema, 900),
        rng=np.random.default_rng(seed),
    )
    solo.run(rounds=10.0)
    row = ens.row_population(0)
    assert row.counts == solo.population.counts
    assert ens.row_interactions_of(0) == solo.interactions


# -- statistical parity of every registered backend --------------------------


@pytest.mark.parametrize("backend", available_backends())
def test_backend_statistical_parity_on_oscillator(backend):
    """Pooled KS of final species counts: backend vs the numpy reference.

    Draws happen host-side, so same-seed runs are bit-identical across
    backends today; the KS bar (not equality) is the contract a device
    backend with slightly different float weight arithmetic must meet.
    """
    from scipy.stats import ks_2samp

    protocol = make_oscillator_protocol()

    def final_counts(name):
        eng = EnsembleEngine(
            protocol,
            _oscillator_population(protocol.schema, 600),
            rng=np.random.default_rng(2024),
            rows=16,
            cache=None,
            backend=name,
        )
        eng.run(rounds=8.0)
        return [
            eng.row_population(r).count(species(i))
            for r in range(16)
            for i in range(3)
        ]

    reference = final_counts("numpy")
    candidate = final_counts(backend)
    ks = ks_2samp(reference, candidate)
    assert ks.pvalue > 0.001
    if backend == "numpy":
        assert candidate == reference  # host draws: bit-identical


def test_engine_records_backend_in_stats():
    protocol = make_oscillator_protocol()
    eng = BatchCountEngine(
        protocol,
        _oscillator_population(protocol.schema, 600),
        rng=np.random.default_rng(5),
        cache=None,
    )
    eng.run(rounds=2.0)
    assert eng.stats.backend == "numpy"
