"""EngineConfig: the typed engine-construction path.

One frozen config carries engine name + backend + construction knobs
through ``make_engine`` / ``simulate`` / ``run_replicas``, into manifest
headers, and back out through ``replay_replica`` / ``resume_sweep``.
The legacy loose ``engine_opts`` kwargs keep working for one release but
emit a ``DeprecationWarning``.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro import (
    EngineConfig,
    build_workload,
    load_manifest,
    make_engine,
    replay_replica,
    resume_sweep,
    run_replicas,
    simulate,
)
from repro.engine import BatchCountEngine, CountEngine, EnsembleEngine
from repro.engine.config import warn_engine_opts
from repro.obs import _header_config


def epidemic(n=120):
    workload = build_workload("epidemic", n=n)
    return workload


# -- construction + projection ----------------------------------------------


class TestEngineConfig:
    def test_defaults_project_nothing(self):
        cfg = EngineConfig()
        assert cfg.engine == "auto"
        assert cfg.engine_kwargs(BatchCountEngine) == {}

    def test_typed_knobs_reach_supporting_engines(self):
        cfg = EngineConfig(engine="batch", backend="numpy", batch=8, guards=True)
        kwargs = cfg.engine_kwargs(BatchCountEngine)
        assert kwargs == {"backend": "numpy", "batch": 8, "guards": True}

    def test_inapplicable_knob_is_dropped_silently(self):
        # CountEngine has no batching; the config describes intent
        cfg = EngineConfig(engine="count", batch=8)
        assert "batch" not in cfg.engine_kwargs(CountEngine)

    def test_nondefault_backend_on_unsupporting_engine_raises(self):
        cfg = EngineConfig(engine="count", backend="cupy")
        with pytest.raises(ValueError, match="does not support array backends"):
            cfg.engine_kwargs(CountEngine)

    def test_default_backend_on_unsupporting_engine_is_dropped(self):
        # backend-less engines ARE plain numpy: a shared --backend numpy
        # flag must work on every engine, including T3's count engine
        cfg = EngineConfig(engine="count", backend="numpy")
        assert cfg.engine_kwargs(CountEngine) == {}

    def test_extra_passes_through_and_typos_fail_loudly(self):
        workload = epidemic()
        cfg = EngineConfig(engine="batch", extra={"definitely_not_a_knob": 1})
        with pytest.raises(TypeError):
            make_engine(workload.protocol, workload.population, cfg)

    def test_backend_instance_normalizes_to_name(self):
        from repro.engine.backend import get_backend

        cfg = EngineConfig(backend=get_backend("numpy"))
        assert cfg.backend == "numpy"

    def test_round_trip_as_dict_from_dict(self):
        cfg = EngineConfig(
            engine="ensemble",
            backend="numpy",
            batch=4,
            guards=True,
            ensemble_chunk=8,
            extra={"rows": 3},
        )
        assert EngineConfig.from_dict(cfg.as_dict()) == cfg

    def test_from_dict_unknown_keys_survive_into_extra(self):
        cfg = EngineConfig.from_dict({"engine": "batch", "rows": 7})
        assert cfg.engine == "batch"
        assert cfg.extra == {"rows": 7}

    def test_picklable(self):
        cfg = EngineConfig(engine="batch", backend="numpy", guards=True)
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    def test_legacy_opts_projection(self):
        cfg = EngineConfig(
            engine="ensemble", backend="numpy", ensemble_chunk=4,
            extra={"rows": 2},
        )
        assert cfg.legacy_opts() == {
            "backend": "numpy", "ensemble_chunk": 4, "rows": 2,
        }


class TestCoerce:
    def test_config_in_engine_slot_is_canonical(self):
        cfg = EngineConfig(engine="batch")
        assert EngineConfig.coerce(cfg) is cfg

    def test_config_plus_config_kwarg_conflicts(self):
        cfg = EngineConfig(engine="batch")
        with pytest.raises(ValueError, match="not both"):
            EngineConfig.coerce(cfg, config=cfg)

    def test_engine_name_adopted_when_config_is_auto(self):
        cfg = EngineConfig()
        assert EngineConfig.coerce("batch", config=cfg).engine == "batch"

    def test_conflicting_engine_names_raise(self):
        cfg = EngineConfig(engine="count")
        with pytest.raises(ValueError, match="conflicting engine"):
            EngineConfig.coerce("batch", config=cfg)

    def test_legacy_opts_merge_into_typed_fields(self):
        cfg = EngineConfig.coerce(
            "batch", engine_opts={"guards": True, "rows": 2}
        )
        assert cfg.guards is True
        assert cfg.extra == {"rows": 2}


# -- deprecation window ------------------------------------------------------


class TestDeprecation:
    def test_make_engine_loose_kwargs_warn(self):
        workload = epidemic()
        with pytest.warns(DeprecationWarning, match="engine_opts"):
            make_engine(
                workload.protocol, workload.population.copy(),
                engine="batch", seed=0, batch=2,
            )

    def test_config_path_is_warning_free(self):
        workload = epidemic()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_engine(
                workload.protocol, workload.population.copy(),
                EngineConfig(engine="batch", batch=2), seed=0,
            )

    def test_simulate_engine_opts_dict_warns(self):
        workload = epidemic()
        with pytest.warns(DeprecationWarning, match="engine_opts"):
            simulate(
                workload.protocol, workload.population.copy(),
                engine="batch", seed=0, engine_opts={"batch": 2}, rounds=1.0,
            )

    def test_warn_engine_opts_is_a_deprecation_warning(self):
        with pytest.warns(DeprecationWarning):
            warn_engine_opts(stacklevel=1)

    def test_top_level_engines_alias_warns(self):
        import repro

        with pytest.warns(DeprecationWarning, match="deprecated"):
            choices = repro.ENGINE_CHOICES
        assert "batch" in choices


# -- make_engine / simulate integration --------------------------------------


class TestMakeEngine:
    def test_config_selects_engine_and_backend(self):
        workload = epidemic()
        eng = make_engine(
            workload.protocol, workload.population.copy(),
            EngineConfig(engine="batch", backend="numpy"), seed=0,
        )
        assert isinstance(eng, BatchCountEngine)
        assert eng.backend.name == "numpy"

    def test_backend_kwarg_overrides_config(self):
        workload = epidemic()
        eng = make_engine(
            workload.protocol, workload.population.copy(),
            EngineConfig(engine="ensemble"), seed=0, backend="numpy",
        )
        assert isinstance(eng, EnsembleEngine)
        assert eng.backend.name == "numpy"

    def test_plain_engine_name_stays_first_class(self):
        workload = epidemic()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            eng = make_engine(
                workload.protocol, workload.population.copy(),
                engine="count", seed=0,
            )
        assert isinstance(eng, CountEngine)


# -- manifest round-trip ------------------------------------------------------


def sweep(tmp_path, config, replicas=3, seed=9, **kwargs):
    workload = epidemic()
    path = str(tmp_path / "run.jsonl")
    rs = run_replicas(
        workload.protocol,
        workload.population,
        replicas=replicas,
        seed=seed,
        processes=1,
        stop=workload.stop,
        config=config,
        manifest=path,
        manifest_meta={"workload": workload.spec()},
        **kwargs,
    )
    return workload, path, rs


class TestManifestConfig:
    def test_header_records_config_and_legacy_projection(self, tmp_path):
        cfg = EngineConfig(engine="batch", backend="numpy", guards=True)
        _, path, _ = sweep(tmp_path, cfg)
        header = load_manifest(path).header
        assert header["config"] == {
            "engine": "batch", "backend": "numpy", "guards": True,
        }
        # legacy keys stay as projections for old readers
        assert header["engine"] == "batch"
        assert header["engine_opts"] == {"backend": "numpy", "guards": True}
        assert _header_config(header) == cfg

    def test_replay_restores_exact_config(self, tmp_path):
        cfg = EngineConfig(engine="batch", backend="numpy", guards=True)
        _, path, rs = sweep(tmp_path, cfg)
        manifest = load_manifest(path)
        for record in rs.records:
            fresh = replay_replica(manifest, record.index)
            assert fresh.rounds == record.rounds
            assert fresh.interactions == record.interactions
            assert fresh.converged == record.converged

    def test_replay_backend_override_is_bit_identical(self, tmp_path):
        cfg = EngineConfig(engine="batch", guards=True)
        _, path, rs = sweep(tmp_path, cfg)
        fresh = replay_replica(load_manifest(path), 0, backend="numpy")
        assert fresh.interactions == rs.records[0].interactions

    def test_ensemble_config_round_trip(self, tmp_path):
        cfg = EngineConfig(engine="ensemble", backend="numpy", ensemble_chunk=2)
        _, path, rs = sweep(tmp_path, cfg, replicas=4)
        manifest = load_manifest(path)
        assert _header_config(manifest.header) == cfg
        fresh = replay_replica(manifest, 1)
        assert fresh.interactions == rs.records[1].interactions
        assert fresh.rounds == rs.records[1].rounds

    def test_resume_restores_config(self, tmp_path):
        cfg = EngineConfig(engine="batch", backend="numpy", guards=True)
        workload, full_path, full = sweep(tmp_path, cfg, replicas=4, seed=11)
        partial_path = str(tmp_path / "partial.jsonl")
        run_replicas(
            workload.protocol,
            workload.population,
            replicas=4,
            seed=11,
            processes=1,
            stop=workload.stop,
            config=cfg,
            manifest=partial_path,
            manifest_meta={"workload": workload.spec()},
            indices=[0, 2],
        )
        resumed = resume_sweep(partial_path, processes=1)
        by_index = {r.index: r for r in resumed.records}
        for record in full.records:
            assert by_index[record.index].interactions == record.interactions
            assert by_index[record.index].rounds == record.rounds
        header = load_manifest(partial_path).header
        assert _header_config(header) == cfg


# -- CLI surface ---------------------------------------------------------------


class TestCLI:
    def test_unknown_backend_rejected_with_names(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["majority", "--n", "200", "--backend", "nope"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown backend" in err
        assert "numpy" in err

    def test_unknown_engine_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["majority", "--n", "200", "--engine", "nope"])
        assert excinfo.value.code == 2

    def test_ensemble_chunk_conflicts_with_other_engine(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "sweep", "epidemic", "--n", "100", "--replicas", "2",
                "--engine", "batch", "--ensemble-chunk", "2",
            ])
        assert excinfo.value.code == 2
        assert "--ensemble-chunk" in capsys.readouterr().err

    def test_config_from_args_backend_and_chunk(self):
        from repro.__main__ import _config_from_args, build_parser

        args = build_parser().parse_args([
            "sweep", "epidemic", "--backend", "numpy", "--ensemble-chunk", "4",
        ])
        cfg = _config_from_args(args)
        assert cfg == EngineConfig(
            engine="ensemble", backend="numpy", ensemble_chunk=4,
        )

    def test_backend_flag_runs_end_to_end(self, capsys):
        from repro.__main__ import main

        code = main([
            "majority", "--n", "300", "--seed", "1",
            "--engine", "batch", "--backend", "numpy",
        ])
        assert code == 0
        assert "majority says" in capsys.readouterr().out


class TestInterpreterConfig:
    def test_interpreter_accepts_config(self):
        from repro.core import Population, V
        from repro.lang import IdealInterpreter, parse_program, program_schema

        program = parse_program(
            "def protocol Tiny\n"
            "var X <- off:\n"
            "thread Main uses X:\n"
            "  repeat:\n"
            "    X := on\n"
        )
        schema = program_schema(program)
        population = Population.uniform(
            schema, 60, {decl.name: decl.init for decl in program.variables}
        )
        interp = IdealInterpreter(
            program,
            population,
            rng=np.random.default_rng(0),
            engine=EngineConfig(engine="count"),
        )
        interp.run(1)
        assert interp.engine == "count"
        assert interp.iterations == 1
