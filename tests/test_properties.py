"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.core.formula import And, Not, Or, Var
from repro.engine import CountEngine, LazyTable
from repro.predicates import Remainder, Threshold


# -- schema packing ---------------------------------------------------------------
@st.composite
def schema_and_assignment(draw):
    n_flags = draw(st.integers(1, 4))
    enum_sizes = draw(st.lists(st.integers(2, 6), min_size=0, max_size=3))
    schema = StateSchema()
    assignment = {}
    for i in range(n_flags):
        name = "f{}".format(i)
        schema.flag(name)
        assignment[name] = draw(st.booleans())
    for i, size in enumerate(enum_sizes):
        name = "e{}".format(i)
        schema.enum(name, size)
        assignment[name] = draw(st.integers(0, size - 1))
    return schema, assignment


@given(schema_and_assignment())
@settings(max_examples=100, deadline=None)
def test_pack_decode_roundtrip(data):
    schema, assignment = data
    code = schema.pack(assignment)
    assert 0 <= code < schema.num_states
    assert schema.decode(code) == assignment


@given(schema_and_assignment(), st.data())
@settings(max_examples=60, deadline=None)
def test_with_values_matches_repack(data, extra):
    schema, assignment = data
    code = schema.pack(assignment)
    field = extra.draw(st.sampled_from(schema.fields))
    value = extra.draw(st.sampled_from(list(field.values)))
    new_code = schema.with_values(code, {field.name: value})
    expected = dict(assignment)
    expected[field.name] = value
    assert new_code == schema.pack(expected)


# -- formulas -----------------------------------------------------------------------
@st.composite
def formulas(draw, variables=("a", "b", "c"), depth=3):
    if depth == 0:
        return Var(draw(st.sampled_from(variables)))
    kind = draw(st.sampled_from(["var", "not", "and", "or"]))
    if kind == "var":
        return Var(draw(st.sampled_from(variables)))
    if kind == "not":
        return Not(draw(formulas(variables=variables, depth=depth - 1)))
    left = draw(formulas(variables=variables, depth=depth - 1))
    right = draw(formulas(variables=variables, depth=depth - 1))
    return And(left, right) if kind == "and" else Or(left, right)


@given(formulas(), st.tuples(st.booleans(), st.booleans(), st.booleans()))
@settings(max_examples=150, deadline=None)
def test_formula_evaluation_matches_python_semantics(formula, values):
    schema = StateSchema()
    schema.flags("a", "b", "c")
    assignment = dict(zip(("a", "b", "c"), values))
    state = schema.unpack(schema.pack(assignment))

    def semantics(f):
        if isinstance(f, Var):
            return assignment[f.name] == f.value
        if isinstance(f, Not):
            return not semantics(f.operand)
        if isinstance(f, And):
            return all(semantics(o) for o in f.operands)
        return any(semantics(o) for o in f.operands)

    assert formula.evaluate(state) == semantics(formula)


@given(formulas())
@settings(max_examples=60, deadline=None)
def test_double_negation(formula):
    schema = StateSchema()
    schema.flags("a", "b", "c")
    for code in range(8):
        state = schema.unpack(code)
        assert Not(Not(formula)).evaluate(state) == formula.evaluate(state)


# -- population invariants -------------------------------------------------------------
@given(
    st.lists(st.tuples(st.booleans(), st.integers(1, 50)), min_size=1, max_size=6)
)
@settings(max_examples=60, deadline=None)
def test_population_counts_consistent(groups):
    schema = StateSchema()
    schema.flag("A")
    pop = Population.from_groups(schema, [({"A": a}, c) for a, c in groups])
    assert pop.count(V("A")) + pop.count(~V("A")) == pop.n
    assert pop.fraction(V("A")) <= 1.0


@given(st.integers(2, 60), st.integers(0, 60), st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_engine_conserves_population(n, infected_raw, seed):
    infected = min(infected_raw, n)
    schema = StateSchema()
    schema.flag("I")
    proto = single_thread(
        "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
    )
    pop = Population.from_groups(
        schema, [({"I": True}, infected), ({"I": False}, n - infected)]
    )
    eng = CountEngine(proto, pop, rng=np.random.default_rng(seed))
    eng.run(rounds=3)
    assert pop.n == n
    # the epidemic can only grow
    assert pop.count(V("I")) >= infected


# -- transition tables ------------------------------------------------------------------
@given(st.integers(0, 3), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_table_probabilities_bounded(code_a, code_b):
    schema = StateSchema()
    schema.flags("A", "B")
    proto = single_thread(
        "p",
        schema,
        [
            Rule(V("A"), None, {"B": True}),
            Rule(V("B"), V("A"), {"A": False}, {"A": False}),
        ],
    )
    table = LazyTable(proto)
    entry = table.outcomes(code_a, code_b)
    assert 0.0 <= entry.p_change <= 1.0 + 1e-12
    assert all(p >= 0 for p in entry.probs)


# -- predicate algebra -----------------------------------------------------------------
@given(
    st.integers(0, 40),
    st.integers(0, 40),
    st.integers(-5, 5),
    st.integers(-5, 5),
    st.integers(-10, 10),
)
@settings(max_examples=120, deadline=None)
def test_threshold_matches_arithmetic(xa, xb, ca, cb, const):
    if ca == 0 and cb == 0:
        return
    coeffs = {}
    if ca:
        coeffs["A"] = ca
    if cb:
        coeffs["B"] = cb
    if not coeffs:
        return
    pred = Threshold(coeffs, const)
    counts = {"A": xa, "B": xb}
    expected = ca * xa + cb * xb >= const
    assert pred.evaluate(counts) == expected


@given(st.integers(0, 100), st.integers(2, 9), st.integers(0, 8))
@settings(max_examples=80, deadline=None)
def test_remainder_matches_arithmetic(x, m, r):
    pred = Remainder({"A": 1}, r, m)
    assert pred.evaluate({"A": x}) == (x % m == r % m)


@given(st.integers(0, 30), st.integers(0, 30))
@settings(max_examples=60, deadline=None)
def test_boolean_closure_demorgan(xa, xb):
    p = Threshold({"A": 1}, 5)
    q = Threshold({"B": 1}, 5)
    counts = {"A": xa, "B": xb}
    lhs = (~(p & q)).evaluate(counts)
    rhs = ((~p) | (~q)).evaluate(counts)
    assert lhs == rhs


# -- precompilation ----------------------------------------------------------------------
@given(st.integers(1, 3), st.integers(1, 3))
@settings(max_examples=20, deadline=None)
def test_precompiled_tree_always_uniform(n_assigns, loop_body):
    from repro.core.formula import TRUE
    from repro.lang import Assign, Program, Repeat, RepeatLog, ThreadDef, VarDecl, precompile

    body = [Assign("v0", TRUE) for _ in range(n_assigns)]
    body.append(RepeatLog([Assign("v0", TRUE) for _ in range(loop_body)]))
    program = Program(
        "P", [VarDecl("v0")], [ThreadDef("Main", body=Repeat(body))]
    )
    pre = precompile(program)
    depths = {len(path) for path, _ in pre.leaves()}
    assert depths == {pre.depth}

    def widths(node, acc):
        from repro.lang.precompile import LoopNode

        if isinstance(node, LoopNode):
            acc.add(len(node.children))
            for child in node.children:
                widths(child, acc)
        return acc

    assert widths(pre.root, set()) == {pre.width}
