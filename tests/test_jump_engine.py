"""BatchCountEngine: exactness at batch=1, invariants, and statistical
equivalence of the multinomial jump approximation.

The jump engine must (a) reproduce CountEngine's event stream exactly when
``batch=1``, (b) conserve population size and protocol invariants under
arbitrarily large batches, and (c) in adaptive mode be statistically
indistinguishable from the exact engines on convergence-time
distributions (two-sample KS over >= 50 independent seeds).
"""

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.baselines.approx_majority import (
    approx_majority_population,
    make_approx_majority,
)
from repro.clocks import ClockParams, majority_phase, make_clock_protocol
from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import ArrayEngine, BatchCountEngine, CountEngine
from repro.oscillator import (
    make_oscillator_protocol,
    species,
    strong_value,
    weak_value,
)

KS_SEEDS = 50
KS_ALPHA = 0.01


@pytest.fixture
def epidemic():
    schema = StateSchema()
    schema.flag("I")
    return single_thread(
        "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
    )


@pytest.fixture
def leader_fight():
    schema = StateSchema()
    schema.flag("L")
    return single_thread(
        "leader-fight", schema, [Rule(V("L"), V("L"), None, {"L": False})]
    )


def epidemic_population(schema, n, infected=1):
    return Population.from_groups(
        schema, [({"I": True}, infected), ({"I": False}, n - infected)]
    )


class TestExactMode:
    def test_batch_one_matches_count_engine_stream(self, epidemic):
        n = 2000
        stop = lambda p: p.all_satisfy(V("I"))
        jump = BatchCountEngine(
            epidemic,
            epidemic_population(epidemic.schema, n),
            rng=np.random.default_rng(11),
            batch=1,
        )
        jump.run(stop=stop)
        exact = CountEngine(
            epidemic,
            epidemic_population(epidemic.schema, n),
            rng=np.random.default_rng(11),
        )
        exact.run(stop=stop)
        # identical RNG consumption: the exact fallback path is the
        # CountEngine path, so the whole trajectory coincides
        assert jump.interactions == exact.interactions
        assert jump.events == exact.events
        assert jump.batches == 0

    def test_batch_validation(self, epidemic):
        pop = epidemic_population(epidemic.schema, 100)
        with pytest.raises(ValueError):
            BatchCountEngine(epidemic, pop, batch=0)
        with pytest.raises(ValueError):
            BatchCountEngine(epidemic, pop, accuracy=0.0)
        with pytest.raises(ValueError):
            BatchCountEngine(epidemic, pop, accuracy=1.5)


class TestInvariants:
    def test_population_size_conserved(self, epidemic):
        pop = epidemic_population(epidemic.schema, 50000)
        eng = BatchCountEngine(epidemic, pop, rng=np.random.default_rng(0))
        eng.run(rounds=10)
        assert eng.population.n == 50000

    def test_monotone_epidemic_counts(self, epidemic):
        # infections never reverse: every batch delta keeps I monotone
        pop = epidemic_population(epidemic.schema, 30000)
        eng = BatchCountEngine(epidemic, pop, rng=np.random.default_rng(1))
        last = pop.count(V("I"))
        for _ in range(20):
            eng.run(rounds=eng.rounds + 1)
            now = eng.population.count(V("I"))
            assert now >= last
            assert 0 <= now <= 30000
            last = now

    def test_cancellation_conserves_difference(self):
        # A + B -> blank + blank conserves #A - #B exactly; batched
        # multinomial deltas must preserve it too (they fire the rule k
        # times, each k preserving the invariant)
        schema = StateSchema()
        schema.enum("c", 3, values=("A", "B", "blank"))
        cancel = single_thread(
            "cancel",
            schema,
            [
                Rule(V("c", "A"), V("c", "B"), {"c": "blank"}, {"c": "blank"}),
                Rule(V("c", "B"), V("c", "A"), {"c": "blank"}, {"c": "blank"}),
            ],
        )
        pop = Population.from_groups(
            schema, [({"c": "A"}, 30000), ({"c": "B"}, 20000)]
        )
        eng = BatchCountEngine(cancel, pop, rng=np.random.default_rng(2))
        eng.run(rounds=200)
        final = eng.population
        assert final.count(V("c", "A")) - final.count(V("c", "B")) == 10000
        assert final.count(V("c", "B")) == 0  # silent: minority extinct
        assert eng.batches > 0

    def test_uses_batches_at_scale(self, epidemic):
        pop = epidemic_population(epidemic.schema, 100000)
        eng = BatchCountEngine(epidemic, pop, rng=np.random.default_rng(3))
        eng.run(stop=lambda p: p.all_satisfy(V("I")))
        # O(q^2 log n / accuracy) batches replace ~n events
        assert eng.batches > 0
        assert eng.batches < eng.events / 10

    def test_silent_configuration_fast_forwards(self, epidemic):
        pop = Population.uniform(epidemic.schema, 1000, {"I": True})
        eng = BatchCountEngine(epidemic, pop, rng=np.random.default_rng(4))
        eng.run(rounds=50)
        assert eng.rounds == pytest.approx(50.0)
        assert eng.events == 0


def _hitting_times(engine_factory, make_pop, stop, seeds, **run_kwargs):
    times = []
    for seed in seeds:
        eng = engine_factory(make_pop(), np.random.default_rng(seed))
        eng.run(stop=stop, **run_kwargs)
        times.append(eng.rounds)
    return np.asarray(times)


class TestStatisticalEquivalence:
    """Adaptive jump sampling vs the exact engines, two-sample KS."""

    def test_approx_majority_equivalence(self):
        protocol = make_approx_majority()
        n, count_a, count_b = 200, 120, 60

        def make_pop():
            return approx_majority_population(protocol.schema, n, count_a, count_b)

        def consensus(pop):
            return pop.count(V("am", "A")) in (0, pop.n) or pop.count(
                V("am", "B")
            ) in (0, pop.n)

        seeds = range(KS_SEEDS)
        exact = _hitting_times(
            lambda p, r: CountEngine(protocol, p, rng=r),
            make_pop, consensus, seeds,
        )
        jump = _hitting_times(
            lambda p, r: BatchCountEngine(protocol, p, rng=r),
            make_pop, consensus, (s + 1000 for s in seeds),
        )
        array = _hitting_times(
            lambda p, r: ArrayEngine(protocol, p, rng=r),
            make_pop, consensus, (s + 2000 for s in seeds), stop_every=0.25,
        )
        assert ks_2samp(exact, jump).pvalue > KS_ALPHA
        assert ks_2samp(exact, array).pvalue > KS_ALPHA

    def test_leader_fight_equivalence(self, leader_fight):
        # L + L -> L + follower: Theta(n)-round tail dominated by the last
        # few leader meetings — exercises the exact-fallback crossover
        n = 100

        def make_pop():
            return Population.uniform(leader_fight.schema, n, {"L": True})

        def unique(pop):
            return pop.count(V("L")) == 1

        seeds = range(KS_SEEDS)
        exact = _hitting_times(
            lambda p, r: CountEngine(leader_fight, p, rng=r),
            make_pop, unique, seeds,
        )
        jump = _hitting_times(
            lambda p, r: BatchCountEngine(leader_fight, p, rng=r),
            make_pop, unique, (s + 1000 for s in seeds),
        )
        batch_one = _hitting_times(
            lambda p, r: BatchCountEngine(leader_fight, p, rng=r, batch=1),
            make_pop, unique, (s + 2000 for s in seeds),
        )
        assert ks_2samp(exact, jump).pvalue > KS_ALPHA
        assert ks_2samp(exact, batch_one).pvalue > KS_ALPHA

    def test_epidemic_equivalence(self, epidemic):
        n = 500
        stop = lambda p: p.all_satisfy(V("I"))

        def make_pop():
            return epidemic_population(epidemic.schema, n)

        seeds = range(KS_SEEDS)
        exact = _hitting_times(
            lambda p, r: CountEngine(epidemic, p, rng=r),
            make_pop, stop, seeds,
        )
        jump = _hitting_times(
            lambda p, r: BatchCountEngine(epidemic, p, rng=r),
            make_pop, stop, (s + 1000 for s in seeds),
        )
        assert ks_2samp(exact, jump).pvalue > KS_ALPHA

    def test_oscillator_equivalence(self):
        # E3 workload: DK18 oscillator from a deep A1-dominant start; the
        # statistic is the parallel time until A1 loses its majority (the
        # first leg of the rotation), a hitting time that exercises the
        # compiled active-pair batch math on a 7-state protocol whose
        # interactions are mostly effective (no null-skipping shelter).
        protocol = make_oscillator_protocol()
        schema = protocol.schema
        n = 400
        a1 = species(0)

        def make_pop():
            c1, c2 = int(0.8 * (n - 3)), int(0.17 * (n - 3))
            return Population.from_groups(
                schema,
                [
                    ({"osc": strong_value(0)}, c1),
                    ({"osc": weak_value(1)}, c2),
                    ({"osc": weak_value(2)}, (n - 3) - c1 - c2),
                    ({"osc": weak_value(0), "X": True}, 3),
                ],
            )

        def dominance_lost(pop):
            return pop.count(a1) < n // 2

        seeds = range(KS_SEEDS)
        exact = _hitting_times(
            lambda p, r: CountEngine(protocol, p, rng=r),
            make_pop, dominance_lost, seeds,
        )
        jump = _hitting_times(
            lambda p, r: BatchCountEngine(protocol, p, rng=r),
            make_pop, dominance_lost, (s + 1000 for s in seeds),
        )
        assert ks_2samp(exact, jump).pvalue > KS_ALPHA

    def test_phase_clock_equivalence(self):
        # E4 workload: the composed oscillator + phase clock C_o (k=2 ring,
        # q = 168 reachable states); the statistic is the time of the first
        # clock tick (majority phase leaving 0). This is the many-state
        # regime the compiled kernels exist for — the legacy batch path
        # degenerates to per-event stepping here.
        params = ClockParams(module=12, k=2)
        protocol = make_clock_protocol(params=params)
        schema = protocol.schema
        n = 300

        def make_pop():
            c1, c2 = int(0.8 * (n - 3)), int(0.17 * (n - 3))
            return Population.from_groups(
                schema,
                [
                    ({"osc": strong_value(0), "clk": 0}, c1),
                    ({"osc": weak_value(1), "clk": 0}, c2),
                    ({"osc": weak_value(2), "clk": 0}, (n - 3) - c1 - c2),
                    ({"osc": weak_value(0), "X": True, "clk": 0}, 3),
                ],
            )

        def ticked(pop):
            phase, frac = majority_phase(pop, params)
            return phase != 0 and frac >= 0.5

        seeds = range(KS_SEEDS)
        exact = _hitting_times(
            lambda p, r: CountEngine(protocol, p, rng=r),
            make_pop, ticked, seeds,
        )
        jump = _hitting_times(
            lambda p, r: BatchCountEngine(protocol, p, rng=r),
            make_pop, ticked, (s + 1000 for s in seeds),
        )
        assert ks_2samp(exact, jump).pvalue > KS_ALPHA
