"""End-to-end tests for SemilinearPredicateExact (Theorem 6.4).

Populations are kept small: the protocol stacks leader election, the fast
blackbox and the slow blackbox, and the test suite only needs to witness
correctness, not scaling (the benches cover scaling).
"""

import numpy as np
import pytest

from repro.core import V
from repro.predicates import at_least, majority_predicate, parity
from repro.protocols import SemilinearExact, run_semilinear_exact


class TestBuilder:
    def test_program_threads(self):
        builder = SemilinearExact(majority_predicate())
        names = [t.name for t in builder.program.threads]
        assert "Main" in names
        assert "FilteredCoin" in names and "ReduceSets" in names
        assert any(name.startswith("SlowAtom") for name in names)

    def test_fast_block_only_for_thresholds(self):
        builder = SemilinearExact(at_least("A", 2) & parity("A"))
        kinds = [block is not None for block in builder.fast_blocks]
        assert kinds == [True, False]

    def test_population_inputs(self):
        builder = SemilinearExact(majority_predicate())
        pop = builder.populate([("A", 10), ("B", 8), (None, 6)])
        assert pop.count(V("A")) == 10
        assert pop.count(V("B")) == 8
        assert pop.n == 24

    def test_unknown_input_rejected(self):
        builder = SemilinearExact(majority_predicate())
        with pytest.raises(ValueError):
            builder.populate([("C", 5)])

    def test_expected_output(self):
        builder = SemilinearExact(majority_predicate())
        assert builder.expected_output([("A", 5), ("B", 3)])
        assert not builder.expected_output([("A", 3), ("B", 5)])

    def test_pstar_formula_evaluates(self):
        builder = SemilinearExact(majority_predicate())
        pop = builder.populate([("A", 3), ("B", 2)])
        assert pop.count(builder.pstar_formula()) >= 0


class TestEndToEnd:
    @pytest.mark.parametrize(
        "groups",
        [
            [("A", 60), ("B", 50), (None, 40)],
            [("A", 50), ("B", 60), (None, 40)],
        ],
    )
    def test_majority_threshold(self, groups):
        out, want, _, _ = run_semilinear_exact(
            majority_predicate(), groups, rng=np.random.default_rng(11)
        )
        assert out is want

    def test_absolute_threshold_true(self):
        out, want, _, _ = run_semilinear_exact(
            at_least("A", 4), [("A", 7), (None, 120)], rng=np.random.default_rng(12)
        )
        assert want is True and out is True

    def test_absolute_threshold_false(self):
        out, want, _, _ = run_semilinear_exact(
            at_least("A", 4), [("A", 2), (None, 125)], rng=np.random.default_rng(13)
        )
        assert want is False and out is False

    def test_parity_falls_back_to_slow(self):
        """Remainder atoms have no fast substitute; correctness holds via
        the slow thread."""
        out, want, _, _ = run_semilinear_exact(
            parity("A"), [("A", 8), (None, 100)], rng=np.random.default_rng(14)
        )
        assert want is True and out is True

    def test_gap_one(self):
        out, want, _, _ = run_semilinear_exact(
            majority_predicate(),
            [("A", 41), ("B", 40), (None, 39)],
            rng=np.random.default_rng(15),
        )
        assert want is True and out is True
