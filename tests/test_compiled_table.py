"""Compiled sparse transition kernels (`repro.engine.compiled`).

Covers: deterministic reachable-closure ordering, bit-identical agreement
of the CSR arrays with LazyTable, the vectorized apply path, the
fingerprinted disk cache (hit / miss / memo, invalidation on protocol
mutation, corruption recovery), the closure-limit fallback rule, and the
uniform EngineStats surface.
"""

import numpy as np
import pytest

from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import (
    ArrayEngine,
    BatchCountEngine,
    CountEngine,
    LazyTable,
    MatchingEngine,
    compile_table,
    protocol_fingerprint,
    reachable_codes,
)
from repro.engine.compiled import _MEMO, CompiledTable
from repro.engine.dense import DenseTable
from repro.oscillator import make_oscillator_protocol, strong_value, weak_value


@pytest.fixture
def oscillator():
    return make_oscillator_protocol()


def oscillator_population(schema, n):
    c1, c2 = int(0.8 * (n - 3)), int(0.17 * (n - 3))
    return Population.from_groups(
        schema,
        [
            ({"osc": strong_value(0)}, c1),
            ({"osc": weak_value(1)}, c2),
            ({"osc": weak_value(2)}, (n - 3) - c1 - c2),
            ({"osc": weak_value(0), "X": True}, 3),
        ],
    )


def leader_fight(weight=1.0):
    schema = StateSchema()
    schema.flag("L")
    return single_thread(
        "leader-fight",
        schema,
        [Rule(V("L"), V("L"), None, {"L": False}, weight=weight)],
    )


class TestReachableOrder:
    def test_order_is_deterministic(self, oscillator):
        pop = oscillator_population(oscillator.schema, 100)
        codes = list(pop.counts.keys())
        first = reachable_codes(oscillator, codes)
        again = reachable_codes(oscillator, reversed(codes))
        as_set = reachable_codes(make_oscillator_protocol(), set(codes))
        assert first == again == as_set
        # initial support leads, sorted; each later wave is sorted too
        assert first[: len(codes)] == sorted(int(c) for c in codes)

    def test_prebuilt_table_is_reused_and_left_populated(self, oscillator):
        pop = oscillator_population(oscillator.schema, 100)
        codes = list(pop.counts.keys())
        table = LazyTable(oscillator)
        order = reachable_codes(oscillator, codes, table=table)
        assert table.cached_pairs > 0
        assert order == reachable_codes(oscillator, codes)


class TestCompiledArrays:
    def test_csr_layout_is_consistent(self, oscillator):
        pop = oscillator_population(oscillator.schema, 100)
        ct = compile_table(oscillator, pop.counts.keys(), cache=None)
        q = ct.num_states
        assert ct.off[0] == 0
        assert ct.off[-1] == len(ct.out_p)
        assert (np.diff(ct.off) >= 0).all()
        assert len(ct.off) == q * q + 1
        assert ((ct.out_a >= 0) & (ct.out_a < q)).all()
        assert ((ct.out_b >= 0) & (ct.out_b < q)).all()
        assert (ct.out_p > 0).all()

    def test_matches_lazy_table_bit_for_bit(self, oscillator):
        pop = oscillator_population(oscillator.schema, 100)
        ct = compile_table(oscillator, pop.counts.keys(), cache=None)
        lazy = LazyTable(oscillator)
        for a in ct.codes:
            for b in ct.codes:
                mine = ct.outcomes(int(a), int(b))
                ref = lazy.outcomes(int(a), int(b))
                assert np.array_equal(mine.codes_a, ref.codes_a)
                assert np.array_equal(mine.codes_b, ref.codes_b)
                # identical floats (not approx): exact engine paths running
                # on a compiled table must consume the rng identically
                assert np.array_equal(mine.probs, ref.probs)
                assert mine.p_change == ref.p_change
                assert ct.p_change(int(a), int(b)) == ref.p_change

    def test_pair_outside_closure_falls_back_to_protocol(self, oscillator):
        pop = oscillator_population(oscillator.schema, 100)
        ct = compile_table(oscillator, pop.counts.keys(), cache=None)
        outside = [
            c for c in range(oscillator.schema.num_states) if c not in ct.index
        ]
        if not outside:  # pragma: no cover - closure covers the packed space
            pytest.skip("every packed state is reachable")
        code = outside[0]
        ref = LazyTable(oscillator).outcomes(code, code)
        mine = ct.outcomes(code, code)
        assert np.array_equal(mine.probs, ref.probs)
        assert mine.p_change == ref.p_change


class TestVectorizedApply:
    def test_apply_matches_dense_table_stream(self, oscillator):
        n = 600
        pop = oscillator_population(oscillator.schema, n)
        ct = compile_table(oscillator, pop.counts.keys(), cache=None)
        dense = DenseTable(oscillator)
        agents_c = pop.to_agent_array(np.random.default_rng(7))
        agents_d = agents_c.copy()
        rng_c = np.random.default_rng(42)
        rng_d = np.random.default_rng(42)
        perm = np.random.default_rng(5).permutation(n)
        idx_a, idx_b = perm[: n // 2], perm[n // 2 :]
        for _ in range(5):
            changed_c = ct.apply(agents_c, idx_a, idx_b, rng_c)
            changed_d = dense.apply(agents_d, idx_a, idx_b, rng_d)
            assert changed_c == changed_d
            assert np.array_equal(agents_c, agents_d)
        assert (agents_c != pop.to_agent_array(np.random.default_rng(7))).any()

    def test_apply_rejects_states_outside_closure(self, oscillator):
        pop = oscillator_population(oscillator.schema, 100)
        ct = compile_table(oscillator, pop.counts.keys(), cache=None)
        outside = [
            c for c in range(oscillator.schema.num_states) if c not in ct.index
        ]
        if not outside:  # pragma: no cover
            pytest.skip("every packed state is reachable")
        agents = np.full(4, outside[0], dtype=np.int64)
        with pytest.raises(ValueError):
            ct.apply(
                agents,
                np.array([0, 1]),
                np.array([2, 3]),
                np.random.default_rng(0),
            )

    def test_engines_accept_compiled_table(self, oscillator):
        n = 300
        pop = oscillator_population(oscillator.schema, n)
        ct = compile_table(oscillator, pop.counts.keys(), cache=None)
        for cls in (ArrayEngine, MatchingEngine):
            eng = cls(
                oscillator,
                oscillator_population(oscillator.schema, n),
                rng=np.random.default_rng(1),
                table=ct,
            )
            eng.run(rounds=3)
            assert eng.population.n == n


class TestFingerprintCache:
    def test_miss_then_hit_then_memo(self, tmp_path):
        protocol = leader_fight()
        pop = Population.uniform(protocol.schema, 50, {"L": True})
        codes = list(pop.counts.keys())
        fp = protocol_fingerprint(protocol, codes)
        _MEMO.pop(fp, None)

        first = compile_table(protocol, codes, cache=str(tmp_path))
        assert first.cache_status == "miss"
        assert (tmp_path / (fp + ".npz")).exists()

        _MEMO.pop(fp, None)
        second = compile_table(protocol, codes, cache=str(tmp_path))
        assert second.cache_status == "hit"
        assert np.array_equal(second.codes, first.codes)
        assert np.array_equal(second.out_p, first.out_p)
        assert np.array_equal(second.p_change_matrix, first.p_change_matrix)

        third = compile_table(protocol, codes, cache=str(tmp_path))
        assert third.cache_status == "memo"
        assert third is second

    def test_mutated_protocol_misses_the_cache(self, tmp_path):
        pop_codes = None
        fingerprints = set()
        for weight in (1.0, 2.0):
            protocol = leader_fight(weight=weight)
            pop = Population.uniform(protocol.schema, 50, {"L": True})
            pop_codes = list(pop.counts.keys())
            fingerprints.add(protocol_fingerprint(protocol, pop_codes))
        assert len(fingerprints) == 2

        # a rule-set mutation (extra rule) also changes the fingerprint
        schema = StateSchema()
        schema.flag("L")
        mutated = single_thread(
            "leader-fight",
            schema,
            [
                Rule(V("L"), V("L"), None, {"L": False}),
                Rule(~V("L"), V("L"), {"L": True}, None),
            ],
        )
        fingerprints.add(protocol_fingerprint(mutated, pop_codes))
        assert len(fingerprints) == 3

        # and each variant gets its own cache file
        for weight in (1.0, 2.0):
            protocol = leader_fight(weight=weight)
            pop = Population.uniform(protocol.schema, 50, {"L": True})
            _MEMO.pop(protocol_fingerprint(protocol, pop.counts.keys()), None)
            table = compile_table(
                protocol, pop.counts.keys(), cache=str(tmp_path)
            )
            assert table.cache_status == "miss"
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_initial_support_changes_fingerprint(self):
        protocol = leader_fight()
        all_l = Population.uniform(protocol.schema, 50, {"L": True})
        mixed = Population.from_groups(
            protocol.schema, [({"L": True}, 25), ({"L": False}, 25)]
        )
        assert protocol_fingerprint(
            protocol, all_l.counts.keys()
        ) != protocol_fingerprint(protocol, mixed.counts.keys())

    def test_corrupt_cache_entry_recompiles(self, tmp_path):
        protocol = leader_fight()
        pop = Population.uniform(protocol.schema, 50, {"L": True})
        codes = list(pop.counts.keys())
        fp = protocol_fingerprint(protocol, codes)
        _MEMO.pop(fp, None)
        compile_table(protocol, codes, cache=str(tmp_path))
        path = tmp_path / (fp + ".npz")
        path.write_bytes(b"not an npz file")
        _MEMO.pop(fp, None)
        table = compile_table(protocol, codes, cache=str(tmp_path))
        assert table.cache_status == "corrupt"  # corrupt file dropped, rebuilt
        assert table.cache_corrupt == 1
        assert table.num_states == 2
        # the rebuilt table was re-saved, so a fresh load is a clean hit
        _MEMO.pop(fp, None)
        again = compile_table(protocol, codes, cache=str(tmp_path))
        assert again.cache_status == "hit"


class TestFallbackRule:
    def test_closure_limit_raises(self, oscillator):
        pop = oscillator_population(oscillator.schema, 100)
        with pytest.raises(RuntimeError):
            compile_table(oscillator, pop.counts.keys(), limit=2, cache=None)

    def test_engine_falls_back_to_lazy_table(self, oscillator):
        pop = oscillator_population(oscillator.schema, 500)
        eng = BatchCountEngine(
            oscillator,
            pop,
            rng=np.random.default_rng(3),
            compile_limit=2,
            cache=None,
        )
        assert eng._ct is None
        assert isinstance(eng.table, LazyTable)
        eng.run(rounds=5)
        assert eng.population.n == 500

    def test_compiled_true_propagates_the_error(self, oscillator):
        pop = oscillator_population(oscillator.schema, 100)
        with pytest.raises(RuntimeError):
            BatchCountEngine(
                oscillator, pop, compiled=True, compile_limit=2, cache=None
            )

    def test_explicit_table_disables_compilation(self, oscillator):
        pop = oscillator_population(oscillator.schema, 200)
        table = LazyTable(oscillator)
        eng = BatchCountEngine(
            oscillator, pop, rng=np.random.default_rng(0), table=table
        )
        assert eng._ct is None
        assert eng.table is table


class TestEngineStats:
    def test_batch_engine_reports_compiled_counters(self, oscillator):
        pop = oscillator_population(oscillator.schema, 20000)
        eng = BatchCountEngine(
            oscillator, pop, rng=np.random.default_rng(0), cache=None
        )
        eng.run(rounds=20)
        stats = eng.stats.as_dict()
        assert stats["engine"] == "batch"
        assert stats["runs"] == 1
        assert stats["run_seconds"] > 0
        assert stats["interactions"] == eng.interactions
        assert stats["table_kind"] == "compiled"
        assert stats["table_states"] == eng._ct.num_states
        assert stats["table_cache"] == "off"
        assert stats["batches"] == eng.batches
        if eng.batches:
            assert stats["active_states"] >= 1
            assert stats["active_pairs_max"] >= stats["active_pairs_mean"] > 0
            assert stats["kernel_seconds"] > 0
        text = eng.stats.format()
        assert "table_kind" in text and "compiled" in text

    def test_every_engine_populates_stats(self, oscillator):
        n = 200
        for cls in (CountEngine, BatchCountEngine, ArrayEngine, MatchingEngine):
            pop = oscillator_population(oscillator.schema, n)
            eng = cls(oscillator, pop, rng=np.random.default_rng(1))
            eng.run(rounds=2)
            stats = eng.stats.as_dict()
            assert stats["engine"] == cls.name
            assert stats["runs"] == 1
            assert stats["interactions"] > 0
            assert "table_kind" in stats

    def test_stats_accumulate_across_runs(self, oscillator):
        pop = oscillator_population(oscillator.schema, 200)
        eng = CountEngine(oscillator, pop, rng=np.random.default_rng(2))
        eng.run(rounds=1)
        eng.run(rounds=1)
        assert eng.stats.runs == 2
        assert eng.stats.rounds == pytest.approx(eng.rounds)
