"""Tests for the w.h.p. Majority protocol (Theorem 3.2)."""

import numpy as np
import pytest

from repro.core import Population, V
from repro.lang import IdealInterpreter
from repro.protocols import (
    majority_output,
    majority_population,
    majority_program,
    run_majority,
)


class TestProgramShape:
    def test_loop_depth_two(self):
        assert majority_program().loop_depth() == 2

    def test_inputs_and_output(self):
        prog = majority_program()
        assert set(prog.inputs) == {"A", "B"}
        assert prog.outputs == ["YA"]


class TestPopulationSetup:
    def test_counts(self):
        _, pop = majority_population(100, 30, 20)
        assert pop.count(V("A")) == 30
        assert pop.count(V("B")) == 20
        assert pop.n == 100

    def test_rejects_overfull(self):
        with pytest.raises(ValueError):
            majority_population(10, 6, 6)

    def test_output_reading(self):
        schema, pop = majority_population(10, 5, 3)
        assert majority_output(pop) is False  # all YA off initially
        pop.assign_all("YA", V("YA") | ~V("YA"))
        assert majority_output(pop) is True


class TestCorrectness:
    @pytest.mark.parametrize(
        "n,a,b",
        [
            (600, 210, 200),  # moderate gap
            (600, 200, 210),  # B-majority
            (600, 201, 200),  # gap 1, with blanks
            (2000, 667, 666),  # gap 1 at larger n
        ],
    )
    def test_correct_output(self, n, a, b):
        out, _, _ = run_majority(n, a, b, rng=np.random.default_rng(n + a))
        assert out is (a > b)

    def test_gap_one_many_trials(self):
        """Theorem 3.2: correct w.h.p. regardless of the gap."""
        wins = 0
        trials = 8
        for seed in range(trials):
            out, _, _ = run_majority(400, 134, 133, rng=np.random.default_rng(seed))
            wins += out is True
        assert wins >= trials - 1

    def test_inputs_preserved(self):
        """The framework contract: Main must not modify input variables."""
        _, pop = majority_population(300, 110, 100)
        interp = IdealInterpreter(
            majority_program(), pop, rng=np.random.default_rng(5)
        )
        interp.run(2)
        assert pop.count(V("A")) == 110
        assert pop.count(V("B")) == 100

    def test_output_stable_across_iterations(self):
        """Constraint (2) of Section 3: re-running Program keeps a valid
        output unchanged."""
        _, pop = majority_population(300, 120, 100)
        interp = IdealInterpreter(
            majority_program(), pop, rng=np.random.default_rng(6)
        )
        interp.run(2)
        first = majority_output(pop)
        interp.run(2)
        assert majority_output(pop) == first

    def test_rounds_scale_as_polylog(self):
        _, _, rounds_small = run_majority(200, 70, 63, rng=np.random.default_rng(0))
        _, _, rounds_large = run_majority(6000, 2100, 1900, rng=np.random.default_rng(0))
        assert rounds_large / rounds_small < 8  # (ln ratio)^3-ish, never linear
