"""Alias-table sampler correctness: Vose invariant, GOF, degenerate input.

The BGHKPU engine's pair sampling rides entirely on :class:`AliasTable`
(O(1) draws from frozen weights) and :class:`ActivePairSampler` (the
epoch manager over the active ordered-pair cells).  These tests pin the
build invariant, the sampling distribution (chi-square goodness of fit
against the exact cell probabilities, and against direct multinomial
draws over the same weights), and the degenerate inputs that must fail
loudly instead of sampling garbage.
"""

import numpy as np
import pytest
from scipy.stats import chisquare

from repro.engine import ActivePairSampler, AliasTable, alias_pick
from repro.engine.backend import get_backend

SKEWED = np.array([5.0, 1.0, 0.1, 10.0, 3.0, 0.5, 2.0, 8.0])
GOF_ALPHA = 0.001


class TestAliasTableBuild:
    def test_vose_invariant_matches_weights(self):
        table = AliasTable(SKEWED)
        expected = SKEWED / SKEWED.sum()
        np.testing.assert_allclose(table.pvals(), expected, atol=1e-12)

    def test_vose_invariant_on_extreme_skew(self):
        w = np.array([1e-9, 1.0, 1e9, 1e-3, 42.0])
        table = AliasTable(w)
        np.testing.assert_allclose(table.pvals(), w / w.sum(), rtol=1e-9)

    def test_total_and_k_recorded(self):
        table = AliasTable(SKEWED)
        assert table.k == len(SKEWED)
        assert table.total == pytest.approx(float(SKEWED.sum()))

    def test_single_column(self):
        table = AliasTable([3.5])
        rng = np.random.default_rng(0)
        assert (table.sample(rng, 100) == 0).all()

    def test_zero_weight_never_sampled(self):
        w = np.array([1.0, 0.0, 2.0, 0.0, 4.0])
        table = AliasTable(w)
        draws = table.sample(np.random.default_rng(7), 20_000)
        assert not np.isin(draws, [1, 3]).any()


class TestAliasTableGOF:
    def test_chisquare_vs_exact_distribution(self):
        table = AliasTable(SKEWED)
        rng = np.random.default_rng(42)
        draws = table.sample(rng, 40_000)
        observed = np.bincount(draws, minlength=len(SKEWED))
        expected = 40_000 * SKEWED / SKEWED.sum()
        assert chisquare(observed, expected).pvalue > GOF_ALPHA

    def test_chisquare_vs_direct_multinomial(self):
        """Alias draws and one multinomial over the same weights agree.

        The sampler switches between the two representations per batch
        (alias path for sparse batches, multinomial for dense ones), so
        their histograms must be draws from the same law.
        """
        pvals = SKEWED / SKEWED.sum()
        table = AliasTable(SKEWED)
        m = 40_000
        alias_hist = np.bincount(
            table.sample(np.random.default_rng(1), m), minlength=len(SKEWED)
        )
        multi_hist = np.random.default_rng(2).multinomial(m, pvals)
        # two-sample chi-square on the pooled expectation
        pooled = (alias_hist + multi_hist) / 2.0
        stat_a = chisquare(alias_hist, pooled).pvalue
        stat_m = chisquare(multi_hist, pooled).pvalue
        assert stat_a > GOF_ALPHA and stat_m > GOF_ALPHA

    def test_alias_pick_function_matches_table(self):
        table = AliasTable(SKEWED)
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        direct = alias_pick(rng_a, table.prob, table.alias, 500)
        via_table = table.sample(rng_b, 500)
        np.testing.assert_array_equal(direct, via_table)


class TestAliasTableDegenerate:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty 1-D"):
            AliasTable([])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="non-empty 1-D"):
            AliasTable(np.ones((2, 2)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            AliasTable([1.0, -0.5])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN/Inf"):
            AliasTable([1.0, np.nan])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="NaN/Inf"):
            AliasTable([np.inf, 1.0])

    def test_zero_sum_rejected_with_clear_message(self):
        with pytest.raises(ValueError, match="sum to zero"):
            AliasTable([0.0, 0.0, 0.0])


class TestActivePairSampler:
    """Epoch manager over a hand-built 3-state p_change matrix."""

    #: ordered-pair effectiveness: only (0,0), (0,1) and (2,2) can fire
    MATRIX = np.array(
        [
            [0.5, 1.0, 0.0],
            [0.0, 0.0, 0.0],
            [0.0, 0.0, 0.25],
        ]
    )

    def make(self, tol=0.05):
        return ActivePairSampler(get_backend("numpy"), self.MATRIX, tol)

    def test_tol_validated(self):
        with pytest.raises(ValueError, match="alias_rebuild_tol"):
            self.make(tol=-0.1)
        with pytest.raises(ValueError, match="alias_rebuild_tol"):
            self.make(tol=1.5)

    def test_rebuild_weights(self):
        s = self.make()
        full_c = np.array([10.0, 5.0, 0.0])
        s.rebuild(full_c)
        # active set omits the empty state; w = c_i (c_j - δ) p(i, j)
        np.testing.assert_array_equal(s.act, [0, 1])
        assert s.total == pytest.approx(10 * 9 * 0.5 + 10 * 5 * 1.0)
        assert s.active_cells == 2
        assert s.rebuilds == 1

    def test_sample_cells_distribution(self):
        s = self.make()
        s.rebuild(np.array([10.0, 5.0, 0.0]))
        rng = np.random.default_rng(3)
        totals = np.zeros(4)
        for _ in range(200):
            cells, counts = s.sample_cells(rng, 50)
            totals[cells] += counts
        expected = 200 * 50 * s.pvals
        assert chisquare(totals[expected > 0], expected[expected > 0]).pvalue > GOF_ALPHA

    def test_lone_cell_needs_no_rng(self):
        s = self.make()
        s.rebuild(np.array([0.0, 0.0, 7.0]))  # only (2,2) is live
        assert s.cells_nz is not None
        cells, counts = s.sample_cells(None, 13)  # rng unused on this path
        assert cells.tolist() == [0] and counts.tolist() == [13]

    def test_stale_tracks_drift_and_drain(self):
        s = self.make(tol=0.2)
        full_c = np.array([10.0, 5.0, 0.0])
        s.rebuild(full_c)
        assert not s.stale(full_c)
        assert not s.stale(np.array([9.0, 5.0, 0.0]))  # 10% < tol
        assert s.stale(np.array([7.0, 5.0, 0.0]))  # 30% > tol
        assert s.stale(np.array([0.0, 5.0, 0.0]))  # drained state
        s.refresh(np.array([7.0, 5.0, 0.0]))
        assert not s.stale(np.array([7.0, 5.0, 0.0]))
        assert s.refreshes == 1

    def test_refresh_matches_full_rebuild(self):
        s = self.make()
        s.rebuild(np.array([10.0, 5.0, 0.0]))
        drifted = np.array([6.0, 9.0, 0.0])
        s.refresh(drifted)
        fresh = self.make()
        fresh.rebuild(drifted)
        np.testing.assert_allclose(s.w, fresh.w)
        assert s.total == pytest.approx(fresh.total)
        assert s.gamma == pytest.approx(fresh.gamma)

    def test_zero_sum_weights_go_silent_not_crash(self):
        s = self.make()
        s.rebuild(np.array([0.0, 8.0, 0.0]))  # state 1 alone fires nothing
        assert s.total == 0.0
        assert s.pvals is None and s.active_cells == 0

    def test_collision_quantities(self):
        s = self.make()
        s.rebuild(np.array([0.0, 0.0, 8.0]))  # lone diagonal cell, μ = 2
        assert s.mu[0] == pytest.approx(2.0)
        assert s.gamma == pytest.approx(4.0 / (2.0 * 8.0))
        assert s.cap_events == pytest.approx(8.0 / 2.0)
