"""Alias-table sampler correctness: Vose invariant, GOF, degenerate input.

The BGHKPU engine's pair sampling rides entirely on :class:`AliasTable`
(O(1) draws from frozen weights) and :class:`ActivePairSampler` (the
epoch manager over the active ordered-pair cells).  These tests pin the
build invariant, the sampling distribution (chi-square goodness of fit
against the exact cell probabilities, and against direct multinomial
draws over the same weights), and the degenerate inputs that must fail
loudly instead of sampling garbage.
"""

import numpy as np
import pytest
from scipy.stats import chisquare

from repro.engine import ActivePairSampler, AliasTable, alias_pick
from repro.engine.backend import get_backend

SKEWED = np.array([5.0, 1.0, 0.1, 10.0, 3.0, 0.5, 2.0, 8.0])
GOF_ALPHA = 0.001


class TestAliasTableBuild:
    def test_vose_invariant_matches_weights(self):
        table = AliasTable(SKEWED)
        expected = SKEWED / SKEWED.sum()
        np.testing.assert_allclose(table.pvals(), expected, atol=1e-12)

    def test_vose_invariant_on_extreme_skew(self):
        w = np.array([1e-9, 1.0, 1e9, 1e-3, 42.0])
        table = AliasTable(w)
        np.testing.assert_allclose(table.pvals(), w / w.sum(), rtol=1e-9)

    def test_total_and_k_recorded(self):
        table = AliasTable(SKEWED)
        assert table.k == len(SKEWED)
        assert table.total == pytest.approx(float(SKEWED.sum()))

    def test_single_column(self):
        table = AliasTable([3.5])
        rng = np.random.default_rng(0)
        assert (table.sample(rng, 100) == 0).all()

    def test_zero_weight_never_sampled(self):
        w = np.array([1.0, 0.0, 2.0, 0.0, 4.0])
        table = AliasTable(w)
        draws = table.sample(np.random.default_rng(7), 20_000)
        assert not np.isin(draws, [1, 3]).any()


class TestAliasTableGOF:
    def test_chisquare_vs_exact_distribution(self):
        table = AliasTable(SKEWED)
        rng = np.random.default_rng(42)
        draws = table.sample(rng, 40_000)
        observed = np.bincount(draws, minlength=len(SKEWED))
        expected = 40_000 * SKEWED / SKEWED.sum()
        assert chisquare(observed, expected).pvalue > GOF_ALPHA

    def test_chisquare_vs_direct_multinomial(self):
        """Alias draws and one multinomial over the same weights agree.

        The sampler switches between the two representations per batch
        (alias path for sparse batches, multinomial for dense ones), so
        their histograms must be draws from the same law.
        """
        pvals = SKEWED / SKEWED.sum()
        table = AliasTable(SKEWED)
        m = 40_000
        alias_hist = np.bincount(
            table.sample(np.random.default_rng(1), m), minlength=len(SKEWED)
        )
        multi_hist = np.random.default_rng(2).multinomial(m, pvals)
        # two-sample chi-square on the pooled expectation
        pooled = (alias_hist + multi_hist) / 2.0
        stat_a = chisquare(alias_hist, pooled).pvalue
        stat_m = chisquare(multi_hist, pooled).pvalue
        assert stat_a > GOF_ALPHA and stat_m > GOF_ALPHA

    def test_alias_pick_function_matches_table(self):
        table = AliasTable(SKEWED)
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        direct = alias_pick(rng_a, table.prob, table.alias, 500)
        via_table = table.sample(rng_b, 500)
        np.testing.assert_array_equal(direct, via_table)


class TestAliasTableDegenerate:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty 1-D"):
            AliasTable([])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="non-empty 1-D"):
            AliasTable(np.ones((2, 2)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            AliasTable([1.0, -0.5])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN/Inf"):
            AliasTable([1.0, np.nan])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="NaN/Inf"):
            AliasTable([np.inf, 1.0])

    def test_zero_sum_rejected_with_clear_message(self):
        with pytest.raises(ValueError, match="sum to zero"):
            AliasTable([0.0, 0.0, 0.0])


class TestActivePairSampler:
    """Epoch manager over a hand-built 3-state p_change matrix."""

    #: ordered-pair effectiveness: only (0,0), (0,1) and (2,2) can fire
    MATRIX = np.array(
        [
            [0.5, 1.0, 0.0],
            [0.0, 0.0, 0.0],
            [0.0, 0.0, 0.25],
        ]
    )

    def make(self, tol=0.05):
        return ActivePairSampler(get_backend("numpy"), self.MATRIX, tol)

    def test_tol_validated(self):
        with pytest.raises(ValueError, match="alias_rebuild_tol"):
            self.make(tol=-0.1)
        with pytest.raises(ValueError, match="alias_rebuild_tol"):
            self.make(tol=1.5)

    def test_rebuild_weights(self):
        s = self.make()
        full_c = np.array([10.0, 5.0, 0.0])
        s.rebuild(full_c)
        # active set omits the empty state; w = c_i (c_j - δ) p(i, j)
        np.testing.assert_array_equal(s.act, [0, 1])
        assert s.total == pytest.approx(10 * 9 * 0.5 + 10 * 5 * 1.0)
        assert s.active_cells == 2
        assert s.rebuilds == 1

    def test_sample_cells_distribution(self):
        s = self.make()
        s.rebuild(np.array([10.0, 5.0, 0.0]))
        rng = np.random.default_rng(3)
        totals = np.zeros(4)
        for _ in range(200):
            cells, counts = s.sample_cells(rng, 50)
            totals[cells] += counts
        expected = 200 * 50 * s.pvals
        assert chisquare(totals[expected > 0], expected[expected > 0]).pvalue > GOF_ALPHA

    def test_lone_cell_needs_no_rng(self):
        s = self.make()
        s.rebuild(np.array([0.0, 0.0, 7.0]))  # only (2,2) is live
        assert s.cells_nz is not None
        cells, counts = s.sample_cells(None, 13)  # rng unused on this path
        assert cells.tolist() == [0] and counts.tolist() == [13]

    def test_stale_tracks_drift_and_drain(self):
        s = self.make(tol=0.2)
        full_c = np.array([10.0, 5.0, 0.0])
        s.rebuild(full_c)
        assert not s.stale(full_c)
        assert not s.stale(np.array([9.0, 5.0, 0.0]))  # 10% < tol
        assert s.stale(np.array([7.0, 5.0, 0.0]))  # 30% > tol
        assert s.stale(np.array([0.0, 5.0, 0.0]))  # drained state
        s.refresh(np.array([7.0, 5.0, 0.0]))
        assert not s.stale(np.array([7.0, 5.0, 0.0]))
        assert s.refreshes == 1

    def test_refresh_matches_full_rebuild(self):
        s = self.make()
        s.rebuild(np.array([10.0, 5.0, 0.0]))
        drifted = np.array([6.0, 9.0, 0.0])
        s.refresh(drifted)
        fresh = self.make()
        fresh.rebuild(drifted)
        np.testing.assert_allclose(s.w, fresh.w)
        assert s.total == pytest.approx(fresh.total)
        assert s.gamma == pytest.approx(fresh.gamma)

    def test_zero_sum_weights_go_silent_not_crash(self):
        s = self.make()
        s.rebuild(np.array([0.0, 8.0, 0.0]))  # state 1 alone fires nothing
        assert s.total == 0.0
        assert s.pvals is None and s.active_cells == 0

    def test_collision_quantities(self):
        s = self.make()
        s.rebuild(np.array([0.0, 0.0, 8.0]))  # lone diagonal cell, μ = 2
        assert s.mu[0] == pytest.approx(2.0)
        assert s.gamma == pytest.approx(4.0 / (2.0 * 8.0))
        assert s.cap_events == pytest.approx(8.0 / 2.0)

    def test_knob_validation(self):
        backend = get_backend("numpy")
        with pytest.raises(ValueError, match="top_k"):
            ActivePairSampler(backend, self.MATRIX, 0.05, top_k=-1)
        with pytest.raises(ValueError, match="patch_frac"):
            ActivePairSampler(backend, self.MATRIX, 0.05, patch_frac=1.5)

    def test_sticky_union_active_set(self):
        """Rebuilds union the support with the lineage's past states.

        A state that drains to zero keeps its (zero-weight) row, so
        boundary states oscillating around zero stop forcing the active
        set to churn; the zero-weight rows are never sampled.
        """
        s = self.make()
        s.rebuild(np.array([10.0, 5.0, 0.0]))
        np.testing.assert_array_equal(s.act, [0, 1])
        s.rebuild(np.array([10.0, 0.0, 4.0]))  # 1 drained, 2 appeared
        np.testing.assert_array_equal(s.act, [0, 1, 2])
        a = len(s.act)
        # every cell touching the drained state carries zero weight
        assert s.w[1, :].sum() == 0.0 and s.w[:, 1].sum() == 0.0
        cells, _ = s.sample_cells(np.random.default_rng(0), 5_000)
        assert not ((cells // a == 1) | (cells % a == 1)).any()


def _dense_matrix(q=12, seed=0):
    """A strictly positive random p_change matrix (every cell live)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0.05, 1.0, size=(q, q))


def _lumped_chisquare(observed, expected, floor=5.0):
    """Chi-square GOF with the small-expectation cells pooled into one bin.

    The asymptotic chi-square law needs each bin's expectation above ~5;
    the light tail of a dense pair grid has many cells far below that, so
    they are lumped into a single rest bin (standard Cochran pooling).
    """
    big = expected >= floor
    obs, exp = observed[big], expected[big]
    rest = expected[~big].sum()
    if rest > 0.0:
        obs = np.append(obs, observed[~big].sum())
        exp = np.append(exp, rest)
    else:
        # zero-weight cells must never be drawn at all
        assert observed[~big].sum() == 0
    return chisquare(obs, exp)


def _dense_counts(q=12, seed=1, scale=1000.0):
    rng = np.random.default_rng(seed)
    return np.floor(rng.uniform(10.0, scale, size=q))


class TestHybridSampler:
    """The top-K heavy-cell split against the whole-grid distribution."""

    def make(self, top_k, tol=0.05, patch_frac=0.0):
        return ActivePairSampler(
            get_backend("numpy"), _dense_matrix(), tol,
            top_k=top_k, patch_frac=patch_frac,
        )

    def test_heavy_partition_selected(self):
        s = self.make(top_k=8)
        s.rebuild(_dense_counts())
        assert s.heavy_cells is not None and len(s.heavy_cells) == 8
        # the top-K cells really are the heaviest of the frozen grid
        flat = s.w.ravel()
        cutoff = np.sort(flat)[-8]
        assert (flat[s.heavy_cells] >= cutoff).all()
        assert s.heavy_mass == pytest.approx(flat[s.heavy_cells].sum())

    def test_hybrid_disengages_on_small_grids(self):
        s = self.make(top_k=512)  # 144 cells <= 2K: whole-grid path
        s.rebuild(_dense_counts())
        assert s.heavy_cells is None

    def test_hybrid_chisquare_vs_exact_distribution(self):
        """The split draw matches the frozen cell law (GOF, alpha 0.001).

        Multinomial aggregation makes the heavy/tail split exact for any
        fixed partition; this pins the implementation (grouped K+1-bin
        draw + searchsorted tail placement) to the whole-grid pvals.
        """
        s = self.make(top_k=8)
        full_c = _dense_counts()
        s.rebuild(full_c)
        rng = np.random.default_rng(11)
        totals = np.zeros(s.w.size)
        for _ in range(300):
            cells, counts = s.sample_cells(rng, 200)
            np.add.at(totals, cells, counts)
        assert (
            _lumped_chisquare(totals, 300 * 200 * s.pvals).pvalue > GOF_ALPHA
        )

    def test_tail_sees_weight_created_after_selection(self):
        """A cell silent at epoch start is sampleable after a refresh.

        The tail CDF is rebuilt from the *fresh* weight matrix at every
        refresh, so weight drifting into a formerly-zero cell reaches
        the draw immediately — no staleness window.
        """
        matrix = _dense_matrix()
        s = ActivePairSampler(get_backend("numpy"), matrix, 0.0, top_k=8)
        full_c = _dense_counts()
        dead = 3
        full_c[dead] = 0.0
        s.rebuild(full_c.copy())
        # union-grow the set so the dead state is tracked with zero count
        grown = full_c.copy()
        grown[dead] = 400.0
        s.rebuild(grown)
        s.rebuild(full_c)  # back to zero: still in the union, weight 0
        a = len(s.act)
        row = int(np.searchsorted(s.act, dead))
        assert s.w[row, :].sum() == 0.0  # silent at selection time
        s.refresh(grown)  # drifts the dead state to 400 within the epoch
        rng = np.random.default_rng(5)
        hits = 0
        for _ in range(50):
            cells, counts = s.sample_cells(rng, 500)
            hits += counts[(cells // a == row) | (cells % a == row)].sum()
        expected_frac = (
            s.w[row, :].sum() + s.w[:, row].sum() - s.w[row, row]
        ) / s.total
        assert hits > 0
        assert hits / (50 * 500) == pytest.approx(expected_frac, rel=0.25)


class TestPartialRefreshExactness:
    """refresh()/patch must be indistinguishable from a fresh rebuild."""

    def drifted_pairs(self, tol=0.05, patch_frac=1.0, top_k=8):
        """(incrementally refreshed, freshly rebuilt) sampler pair."""
        matrix = _dense_matrix()
        s = ActivePairSampler(
            get_backend("numpy"), matrix, tol,
            top_k=top_k, patch_frac=patch_frac,
        )
        full_c = _dense_counts()
        s.rebuild(full_c)
        rng = np.random.default_rng(42)
        # adversarial drift: interleave tiny single-state nudges (patch
        # path), wide multi-state kicks (scan path), drains to zero and
        # rebuild-tolerance boundary hits (count moved by exactly tol)
        for step in range(60):
            which = step % 4
            if which == 0:
                full_c[rng.integers(len(full_c))] += 1.0
            elif which == 1:
                kick = rng.integers(0, 3, size=len(full_c)).astype(float)
                full_c = np.maximum(full_c - kick, 1.0)
            elif which == 2:
                full_c[step % len(full_c)] = np.floor(
                    full_c[step % len(full_c)] * (1.0 + tol)
                )
            else:
                idx = rng.integers(len(full_c))
                full_c[idx] = 0.0 if full_c[idx] < 50.0 else full_c[idx]
            s.refresh(full_c)
        fresh = ActivePairSampler(
            get_backend("numpy"), matrix, tol,
            top_k=top_k, patch_frac=patch_frac,
        )
        fresh.act = s.act  # same (sticky) active set, fresh derivation
        fresh.psub = fresh.backend.to_numpy(
            fresh.backend.gather_p_change(matrix, s.act)
        )
        fresh.ca = full_c[s.act].copy()
        fresh.w = fresh.backend.pair_weights(fresh.ca, fresh.psub)
        fresh._select_heavy()
        fresh._finalize()
        return s, fresh

    def test_epoch_quantities_match_fresh_rebuild(self):
        s, fresh = self.drifted_pairs()
        assert s.patches > 0  # the patch path actually ran
        np.testing.assert_allclose(s.w, fresh.w, rtol=1e-12, atol=1e-9)
        assert s.total == pytest.approx(fresh.total, rel=1e-9)
        np.testing.assert_allclose(
            s.row_sums, fresh.row_sums, rtol=1e-9, atol=1e-6
        )
        np.testing.assert_allclose(
            s.col_sums, fresh.col_sums, rtol=1e-9, atol=1e-6
        )
        np.testing.assert_allclose(s.mu, fresh.mu, rtol=1e-8, atol=1e-12)
        assert s.gamma == pytest.approx(fresh.gamma, rel=1e-8)
        assert s.cap_events == pytest.approx(fresh.cap_events, rel=1e-8)

    def test_chisquare_vs_fresh_rebuild(self):
        """Draws from the patched epoch fit the fresh-rebuild law."""
        s, fresh = self.drifted_pairs()
        rng = np.random.default_rng(7)
        totals = np.zeros(s.w.size)
        for _ in range(300):
            cells, counts = s.sample_cells(rng, 200)
            np.add.at(totals, cells, counts)
        assert (
            _lumped_chisquare(totals, 300 * 200 * fresh.pvals).pvalue
            > GOF_ALPHA
        )

    def test_patch_vs_scan_arbitration_counts(self):
        s, _ = self.drifted_pairs(patch_frac=1.0)
        assert s.refreshes == 60
        assert 0 < s.patches <= s.refreshes


class TestScratchReuse:
    def test_no_buffer_regrowth_in_steady_state(self):
        """Steady-state epochs allocate nothing (perf satellite pin).

        After the first rebuild sizes the per-epoch buffers, any number
        of refreshes, rebuilds and draws at the same active-set size
        must leave ``scratch_allocs`` flat.
        """
        s = ActivePairSampler(
            get_backend("numpy"), _dense_matrix(), 0.0,
            top_k=8, patch_frac=0.5,
        )
        full_c = _dense_counts()
        rng = np.random.default_rng(3)
        s.rebuild(full_c)
        for _ in range(3):  # warm every lazy buffer (pvals, tail CDF)
            s.sample_cells(rng, 50)
            s.sample_cells(rng, 5_000)
        s.pvals
        warm = s.scratch_allocs
        for step in range(40):
            full_c[step % len(full_c)] += 1.0
            if step % 10 == 0:
                s.rebuild(full_c)
            else:
                s.refresh(full_c)
            s.sample_cells(rng, 50)
            s.sample_cells(rng, 5_000)
            s.pvals
        assert s.scratch_allocs == warm
