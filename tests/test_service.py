"""End-to-end tests of the simulation service.

The server (stdlib asyncio HTTP, see :mod:`repro.service.http`) runs in a
background thread on an ephemeral port and is exercised with plain
``http.client`` — the same wire a CI smoke job or an external caller
uses.  The suite covers the full submit → stream → fetch → replay loop,
backpressure (429 + Retry-After with a deterministically blocked
worker), cancellation leaving a resumable manifest, and the service's
correctness anchor: ``GET /runs/{id}/replay/{k}`` matching the library's
own :func:`repro.obs.replay_replica` bit for bit.
"""

import http.client
import json
import threading
import time

import pytest

from repro import EngineConfig, build_workload, load_manifest, run_replicas
from repro.obs import replay_replica, resume_sweep
from repro.service import ServiceApp, SubmitRequest
from repro.service.schema import ServiceError
from repro.service import sandbox as sandbox_module
from repro.service.store import RunStore


# -- tiny HTTP client ---------------------------------------------------------

def call(port, method, path, body=None, timeout=60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    data = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    try:
        conn.request(method, path, data, headers)
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, dict(resp.getheaders()), raw
    finally:
        conn.close()


def call_json(port, method, path, body=None, timeout=60.0):
    status, headers, raw = call(port, method, path, body, timeout)
    return status, headers, json.loads(raw.decode()) if raw else None


def stream_events(port, run_id, start=0, timeout=120.0):
    """Read the chunked JSONL event stream to completion."""
    status, _, raw = call(
        port, "GET", "/runs/{}/events?from={}".format(run_id, start),
        timeout=timeout,
    )
    assert status == 200
    return [json.loads(line) for line in raw.decode().splitlines() if line]


def wait_state(port, run_id, states, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, payload = call_json(port, "GET", "/runs/" + run_id)
        assert status == 200
        if payload["state"] in states:
            return payload
        time.sleep(0.02)
    raise AssertionError(
        "run {} never reached {} (last: {})".format(run_id, states, payload)
    )


@pytest.fixture
def server(tmp_path):
    # in-process execution keeps this suite fast; the sandboxed path is
    # exercised end to end by tests/test_service_survival.py
    app = ServiceApp(str(tmp_path / "runs"), workers=2, capacity=8,
                     sandbox=False)
    handle = app.start_background()
    yield handle
    handle.stop()


SUBMIT = {
    "workload": "epidemic",
    "params": {"n": 120},
    "replicas": 3,
    "seed": 9,
    "config": {"engine": "batch"},
}


# -- request validation (no server needed) ------------------------------------

class TestSchema:
    def test_round_trip(self):
        req = SubmitRequest.from_payload(dict(SUBMIT, label="demo"))
        again = SubmitRequest.from_dict(req.as_dict())
        assert again.as_dict() == req.as_dict()
        assert again.config == EngineConfig(engine="batch")

    @pytest.mark.parametrize("payload,fragment", [
        ([1, 2], "JSON object"),
        ({}, "workload must be one of"),
        ({"workload": "nope"}, "workload must be one of"),
        (dict(SUBMIT, replicas=0), "replicas must be"),
        (dict(SUBMIT, replicas=True), "replicas must be"),
        (dict(SUBMIT, seed=-1), "seed must be"),
        (dict(SUBMIT, config={"engine": "batch", "typo": 1}),
         "unknown config keys: typo"),
        (dict(SUBMIT, run={"walltime": 3}), "unknown run keys: walltime"),
        (dict(SUBMIT, run={"rounds": -1}), "run.rounds must be"),
        (dict(SUBMIT, params={"n": -5}), "bad workload params"),
        (dict(SUBMIT, params={"bogus": 1}), "bad workload params"),
        (dict(SUBMIT, mystery=1), "unknown request keys: mystery"),
        (dict(SUBMIT, observe=True, config={"engine": "ensemble"}),
         "ensemble"),
    ])
    def test_rejections_are_400(self, payload, fragment):
        with pytest.raises(ServiceError) as err:
            SubmitRequest.from_payload(payload)
        assert err.value.status == 400
        assert fragment in err.value.message

    def test_observe_defaults_a_grid_step(self):
        req = SubmitRequest.from_payload(dict(SUBMIT, observe=True))
        assert req.run_kwargs["observe_every"] == 1.0


class TestStore:
    def test_create_status_request_round_trip(self, tmp_path):
        store = RunStore(str(tmp_path))
        req = SubmitRequest.from_payload(SUBMIT)
        run_id = store.create(req)
        assert store.status(run_id)["state"] == "queued"
        assert store.request(run_id).as_dict() == req.as_dict()
        store.set_status(run_id, "done", done=3)
        status = store.status(run_id)
        assert status["state"] == "done"
        assert status["replicas"] == 3  # earlier fields survive updates
        assert [s["run_id"] for s in store.list_runs()] == [run_id]

    def test_traversal_is_a_404(self, tmp_path):
        store = RunStore(str(tmp_path))
        for bad in ("../evil", "..", "a/b", "x" * 12):
            with pytest.raises(ServiceError) as err:
                store.status(bad)
            assert err.value.status == 404


# -- the full loop over HTTP --------------------------------------------------

class TestSubmitStreamFetch:
    def test_round_trip_matches_library_run(self, server, tmp_path):
        port = server.port
        status, _, accepted = call_json(port, "POST", "/runs", SUBMIT)
        assert status == 202
        run_id = accepted["run_id"]
        assert accepted["state"] == "queued"

        events = stream_events(port, run_id)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "state"  # running
        assert kinds[-1] == "state" and events[-1]["state"] == "done"
        replica_events = [e for e in events if e["kind"] == "replica"]
        assert sorted(e["index"] for e in replica_events) == [0, 1, 2]
        progress = [e for e in events if e["kind"] == "progress"]
        assert progress[-1] == {
            "kind": "progress", "done": 3, "total": 3,
            "seq": progress[-1]["seq"],
        }

        final = wait_state(port, run_id, {"done"})
        assert final["done"] == 3
        assert final["converged"] == 3
        assert final["manifest"] is True
        assert final["request"]["workload"] == "epidemic"

        # the served manifest is a real repro.obs manifest whose records
        # are bit-identical to the same sweep run through the library
        status, headers, raw = call(port, "GET", "/runs/%s/manifest" % run_id)
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        manifest_path = tmp_path / "served.jsonl"
        manifest_path.write_bytes(raw)
        served = load_manifest(str(manifest_path))
        workload = build_workload("epidemic", n=120)
        rs = run_replicas(
            workload.protocol, workload.population, replicas=3,
            config=EngineConfig(engine="batch"), seed=9, processes=1,
            stop=workload.stop,
        )
        for record in rs:
            loaded = served.record(record.index)
            assert loaded.interactions == record.interactions
            assert loaded.rounds == record.rounds
            assert loaded.converged == record.converged

    def test_stream_resumes_from_cursor_after_completion(self, server):
        port = server.port
        _, _, accepted = call_json(port, "POST", "/runs", SUBMIT)
        run_id = accepted["run_id"]
        wait_state(port, run_id, {"done"})
        full = stream_events(port, run_id)  # persisted-log path
        tail = stream_events(port, run_id, start=2)
        assert tail == full[2:]
        assert all(e["seq"] == k for k, e in enumerate(full))

    def test_run_listing(self, server):
        port = server.port
        _, _, accepted = call_json(port, "POST", "/runs", SUBMIT)
        wait_state(port, accepted["run_id"], {"done"})
        status, _, listing = call_json(port, "GET", "/runs")
        assert status == 200
        assert accepted["run_id"] in [r["run_id"] for r in listing["runs"]]

    def test_healthz(self, server):
        status, _, payload = call_json(server.port, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["workloads"] == ["clock", "epidemic", "leader"]
        assert payload["queue_depth"] == 0
        assert payload["active_jobs"] == 0
        assert isinstance(payload["store_bytes"], int)
        assert "last_checkpoint_age" in payload


class TestReplayEndpoint:
    def test_replay_is_bit_identical_to_library(self, server, tmp_path):
        port = server.port
        _, _, accepted = call_json(port, "POST", "/runs", SUBMIT)
        run_id = accepted["run_id"]
        wait_state(port, run_id, {"done"})

        status, _, payload = call_json(
            port, "GET", "/runs/{}/replay/1".format(run_id)
        )
        assert status == 200
        assert payload["match"] is True
        assert payload["recorded"] == payload["replayed"]

        # and the endpoint agrees with replay_replica run by hand
        _, _, raw = call(port, "GET", "/runs/%s/manifest" % run_id)
        manifest_path = tmp_path / "m.jsonl"
        manifest_path.write_bytes(raw)
        fresh = replay_replica(load_manifest(str(manifest_path)), 1)
        assert fresh.interactions == payload["recorded"]["interactions"]
        assert fresh.rounds == payload["recorded"]["rounds"]

    def test_replay_unknown_replica_is_404(self, server):
        port = server.port
        _, _, accepted = call_json(port, "POST", "/runs", SUBMIT)
        run_id = accepted["run_id"]
        wait_state(port, run_id, {"done"})
        status, _, payload = call_json(
            port, "GET", "/runs/{}/replay/99".format(run_id)
        )
        assert status == 404
        assert "99" in payload["error"]

    def test_ensemble_chunks_align_with_library_run(self, server, tmp_path):
        # the ensemble engine stacks rows, so the service's checkpoint
        # groups must cut exactly where a plain library call would
        port = server.port
        submit = {
            "workload": "epidemic", "params": {"n": 100}, "replicas": 5,
            "seed": 3,
            "config": {"engine": "ensemble", "ensemble_chunk": 2},
        }
        _, _, accepted = call_json(port, "POST", "/runs", submit)
        run_id = accepted["run_id"]
        final = wait_state(port, run_id, {"done", "failed"})
        assert final["state"] == "done"

        _, _, raw = call(port, "GET", "/runs/%s/manifest" % run_id)
        manifest_path = tmp_path / "ens.jsonl"
        manifest_path.write_bytes(raw)
        served = load_manifest(str(manifest_path))
        workload = build_workload("epidemic", n=100)
        rs = run_replicas(
            workload.protocol, workload.population, replicas=5,
            config=EngineConfig(engine="ensemble", ensemble_chunk=2),
            seed=3, processes=1, stop=workload.stop,
        )
        for record in rs:
            loaded = served.record(record.index)
            assert loaded.interactions == record.interactions
            assert loaded.converged == record.converged

        status, _, payload = call_json(
            port, "GET", "/runs/{}/replay/3".format(run_id)
        )
        assert status == 200 and payload["match"] is True


class TestObserverStreaming:
    def test_grid_events_and_observed_replay(self, server):
        port = server.port
        submit = {
            "workload": "epidemic", "params": {"n": 150}, "replicas": 1,
            "seed": 11, "config": {"engine": "batch"},
            "observe": True, "run": {"observe_every": 0.5},
        }
        _, _, accepted = call_json(port, "POST", "/runs", submit)
        run_id = accepted["run_id"]
        events = stream_events(port, run_id)
        grid = [e for e in events if e["kind"] == "grid"]
        assert grid, "observer grid never streamed"
        assert all(e["replica"] == 0 for e in grid)
        assert [e["t"] for e in grid] == sorted(e["t"] for e in grid)
        for event in grid:
            assert sum(event["counts"].values()) == 150

        # replay of an observer-armed run still matches bit for bit
        # (the endpoint re-arms an observer; a bare replay would not)
        status, _, payload = call_json(
            port, "GET", "/runs/{}/replay/0".format(run_id)
        )
        assert status == 200
        assert payload["match"] is True


# -- backpressure and cancellation -------------------------------------------

@pytest.fixture
def gated_run_replicas(monkeypatch):
    """Make worker jobs block inside their first run_replicas call."""
    gate = threading.Event()
    entered = threading.Event()
    original = sandbox_module.run_replicas

    def gated(*args, **kwargs):
        entered.set()
        assert gate.wait(60.0), "test never released the worker gate"
        return original(*args, **kwargs)

    monkeypatch.setattr(sandbox_module, "run_replicas", gated)
    yield gate, entered
    gate.set()  # never leave a worker stuck past the test


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(
        self, tmp_path, gated_run_replicas
    ):
        gate, entered = gated_run_replicas
        app = ServiceApp(
            str(tmp_path / "runs"), workers=1, capacity=1, retry_after=2.5,
            sandbox=False,
        )
        handle = app.start_background()
        try:
            port = handle.port
            _, _, first = call_json(port, "POST", "/runs", SUBMIT)
            assert entered.wait(30.0)  # worker holds job 1, queue empty
            status, _, second = call_json(port, "POST", "/runs", SUBMIT)
            assert status == 202  # fills the single queue slot

            status, headers, payload = call_json(port, "POST", "/runs", SUBMIT)
            assert status == 429
            assert headers["Retry-After"] == "2.5"
            assert "retry" in payload["error"]
            # the rejected submission left nothing behind in the store
            _, _, listing = call_json(port, "GET", "/runs")
            assert len(listing["runs"]) == 2

            gate.set()
            for accepted in (first, second):
                final = wait_state(port, accepted["run_id"], {"done"})
                assert final["done"] == 3
        finally:
            gate.set()
            handle.stop()


class TestCancellation:
    def test_cancel_leaves_resumable_manifest(self, tmp_path, monkeypatch):
        # let the first index group through, block before the second, and
        # cancel while blocked: the job must stop at the group boundary
        # with a well-formed manifest that resume_sweep can finish
        original = sandbox_module.run_replicas
        first_done = threading.Event()
        release = threading.Event()
        calls = []

        def gated(*args, **kwargs):
            rs = original(*args, **kwargs)
            calls.append(kwargs.get("indices"))
            if len(calls) == 1:
                first_done.set()
                assert release.wait(60.0)
            return rs

        monkeypatch.setattr(sandbox_module, "run_replicas", gated)
        app = ServiceApp(str(tmp_path / "runs"), workers=1, capacity=4,
                         sandbox=False)
        handle = app.start_background()
        try:
            port = handle.port
            _, _, accepted = call_json(
                port, "POST", "/runs", dict(SUBMIT, replicas=4)
            )
            run_id = accepted["run_id"]
            assert first_done.wait(30.0)
            status, _, _payload = call_json(
                port, "POST", "/runs/{}/cancel".format(run_id)
            )
            assert status == 200
            release.set()

            final = wait_state(port, run_id, {"cancelled"})
            assert 0 < final["done"] < 4
            assert calls == [[0]]  # group 2 was never started

            # replaying a replica that never ran is a clean 404 ...
            status, _, _payload = call_json(
                port, "GET", "/runs/{}/replay/3".format(run_id)
            )
            assert status == 404

            # ... and the checkpoint resumes to the full bit-identical sweep
            manifest_path = app.store.manifest_path(run_id)
            resumed = resume_sweep(manifest_path, processes=1)
            assert len(resumed) == 4
            workload = build_workload("epidemic", n=120)
            rs = run_replicas(
                workload.protocol, workload.population, replicas=4,
                config=EngineConfig(engine="batch"), seed=9, processes=1,
                stop=workload.stop,
            )
            by_index = {r.index: r for r in resumed.records}
            for record in rs:
                assert by_index[record.index].interactions == record.interactions
        finally:
            release.set()
            handle.stop()

    def test_cancel_while_queued_never_runs(self, tmp_path, gated_run_replicas):
        # cancelling a job that is still waiting in the queue must settle
        # it as ``cancelled`` without ever spawning work: no worker run,
        # no manifest, done == 0
        gate, entered = gated_run_replicas
        app = ServiceApp(str(tmp_path / "runs"), workers=1, capacity=4,
                         sandbox=False)
        handle = app.start_background()
        try:
            port = handle.port
            _, _, first = call_json(port, "POST", "/runs", SUBMIT)
            assert entered.wait(30.0)  # the only worker is now held busy
            _, _, queued = call_json(port, "POST", "/runs", SUBMIT)
            run_id = queued["run_id"]
            status, _, payload = call_json(
                port, "POST", "/runs/{}/cancel".format(run_id)
            )
            assert status == 200

            gate.set()
            final = wait_state(port, run_id, {"cancelled"})
            assert final["done"] == 0
            assert final["manifest"] is False
            assert not app.store.manifest_exists(run_id)
            # the job ahead of it is untouched by the cancellation
            done = wait_state(port, first["run_id"], {"done"})
            assert done["done"] == 3
        finally:
            gate.set()
            handle.stop()


class TestTransportErrors:
    def test_unknown_run_is_404(self, server):
        for path in (
            "/runs/ffffffffffff", "/runs/ffffffffffff/events",
            "/runs/ffffffffffff/manifest", "/runs/ffffffffffff/replay/0",
        ):
            status, _, payload = call_json(server.port, "GET", path)
            assert status == 404, path
            assert "error" in payload

    def test_bad_json_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request(
                "POST", "/runs", b"{not json",
                {"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 400
            assert b"not valid JSON" in resp.read()
        finally:
            conn.close()

    def test_unknown_endpoint_and_method(self, server):
        status, _, _payload = call_json(server.port, "GET", "/nope")
        assert status == 404
        status, _, _payload = call_json(
            server.port, "GET", "/runs/ffffffffffff/cancel"
        )
        assert status == 405

    def test_validation_error_over_http(self, server):
        status, _, payload = call_json(
            server.port, "POST", "/runs", {"workload": "nope"}
        )
        assert status == 400
        assert "workload" in payload["error"]
