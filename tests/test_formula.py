"""Tests for the boolean formula language."""

import pytest

from repro.core import StateSchema, V
from repro.core.formula import (
    ANY,
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Predicate,
    Var,
    all_of,
    any_of,
    coerce_formula,
)


@pytest.fixture
def schema():
    s = StateSchema()
    s.flags("L", "F", "D")
    s.enum("phase", 4)
    return s


@pytest.fixture
def state(schema):
    return schema.unpack(schema.pack({"L": True, "F": False, "phase": 2}))


class TestVar:
    def test_boolean_true(self, state):
        assert V("L").evaluate(state)

    def test_boolean_false(self, state):
        assert not V("F").evaluate(state)

    def test_enum_match(self, state):
        assert V("phase", 2).evaluate(state)

    def test_enum_mismatch(self, state):
        assert not V("phase", 1).evaluate(state)

    def test_describe_positive(self):
        assert V("L").describe() == "L"

    def test_describe_enum(self):
        assert V("phase", 2).describe() == "phase=2"

    def test_equality_and_hash(self):
        assert V("L") == V("L")
        assert V("L") != V("F")
        assert hash(V("phase", 1)) == hash(V("phase", 1))

    def test_variables(self):
        assert list(V("L").variables()) == ["L"]


class TestConnectives:
    def test_not(self, state):
        assert Not(V("F")).evaluate(state)
        assert not (~V("L")).evaluate(state)

    def test_and_flattens(self):
        formula = V("L") & V("F") & V("D")
        assert isinstance(formula, And)
        assert len(formula.operands) == 3

    def test_or_flattens(self):
        formula = V("L") | V("F") | V("D")
        assert isinstance(formula, Or)
        assert len(formula.operands) == 3

    def test_and_evaluation(self, state):
        assert (V("L") & ~V("F")).evaluate(state)
        assert not (V("L") & V("F")).evaluate(state)

    def test_or_evaluation(self, state):
        assert (V("F") | V("L")).evaluate(state)
        assert not (V("F") | V("D")).evaluate(state)

    def test_nested_describe(self):
        assert (V("L") & ~V("F")).describe() == "(L & ~F)"

    def test_variables_iteration(self):
        formula = (V("L") & V("F")) | ~V("D")
        assert sorted(set(formula.variables())) == ["D", "F", "L"]


class TestConstants:
    def test_any_matches_everything(self, state):
        assert ANY.evaluate(state)
        assert TRUE.evaluate(state)

    def test_false(self, state):
        assert not FALSE.evaluate(state)

    def test_coerce_none(self):
        assert coerce_formula(None) is ANY

    def test_coerce_bool(self, state):
        assert coerce_formula(True).evaluate(state)
        assert not coerce_formula(False).evaluate(state)

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError):
            coerce_formula(42)


class TestUpdates:
    def test_var_as_assignment(self):
        assert V("L").as_assignments() == {"L": True}

    def test_negated_var_as_assignment(self):
        assert (~V("L")).as_assignments() == {"L": False}

    def test_enum_var_as_assignment(self):
        assert V("phase", 3).as_assignments() == {"phase": 3}

    def test_conjunction_as_assignment(self):
        assert (V("L") & ~V("F")).as_assignments() == {"L": True, "F": False}

    def test_contradiction_rejected(self):
        with pytest.raises(ValueError):
            (V("L") & ~V("L")).as_assignments()

    def test_disjunction_rejected(self):
        with pytest.raises(ValueError):
            (V("L") | V("F")).as_assignments()

    def test_true_as_empty_assignment(self):
        assert TRUE.as_assignments() == {}

    def test_false_rejected_as_assignment(self):
        with pytest.raises(ValueError):
            FALSE.as_assignments()


class TestHelpers:
    def test_all_of_empty_is_any(self):
        assert all_of() is ANY

    def test_all_of_single(self):
        assert all_of(V("L")) == V("L")

    def test_any_of_empty_is_false(self, state):
        assert not any_of().evaluate(state)

    def test_predicate_wrapper(self, state):
        p = Predicate(lambda s: s["phase"] >= 2, variables=("phase",))
        assert p.evaluate(state)
        assert list(p.variables()) == ["phase"]

    def test_predicate_composes(self, state):
        p = Predicate(lambda s: s["phase"] >= 2, variables=("phase",))
        assert (p & V("L")).evaluate(state)
        assert not (p & V("F")).evaluate(state)
