"""Tests for the literature baselines (the E11/E12 comparison rows)."""

import numpy as np
import pytest

from repro.core import Population
from repro.engine import CountEngine
from repro.baselines import (
    GS18ClockParams,
    coherence,
    gs18_population,
    make_gs18_clock,
    run_aag18_majority,
    run_approx_majority,
    run_four_state_majority,
)


class TestApproxMajority:
    def test_large_gap_correct_and_fast(self):
        out, rounds = run_approx_majority(2000, 1200, 800, rng=np.random.default_rng(0))
        assert out is True
        assert rounds < 60  # O(log n)

    def test_b_majority(self):
        out, _ = run_approx_majority(2000, 800, 1200, rng=np.random.default_rng(1))
        assert out is False

    def test_small_gap_unreliable(self):
        """With gap 1 the 3-state protocol is a near coin flip — that is its
        documented limitation (needs gap Omega(sqrt(n log n)))."""
        outcomes = []
        for seed in range(12):
            out, _ = run_approx_majority(500, 250, 249, rng=np.random.default_rng(seed))
            outcomes.append(out is True)
        wins = sum(outcomes)
        assert 1 <= wins <= 11  # neither reliably right nor reliably wrong


class TestFourStateMajority:
    @pytest.mark.parametrize("a,b", [(60, 40), (40, 60), (51, 50)])
    def test_always_correct(self, a, b):
        out, _ = run_four_state_majority(a, b, rng=np.random.default_rng(a + b))
        assert out is (a > b)

    def test_gap_one_correct_many_seeds(self):
        for seed in range(6):
            out, _ = run_four_state_majority(41, 40, rng=np.random.default_rng(seed))
            assert out is True

    def test_small_gap_is_slow(self):
        """Theta(n log n) scaling: rounds grow superlinearly with n."""
        _, rounds_small = run_four_state_majority(51, 50, rng=np.random.default_rng(0))
        _, rounds_large = run_four_state_majority(201, 200, rng=np.random.default_rng(0))
        assert rounds_large > rounds_small


class TestAAG18Majority:
    def test_correct_on_moderate_gap(self):
        out, rounds = run_aag18_majority(1000, 360, 320, rng=np.random.default_rng(0))
        assert out is True

    def test_gap_one(self):
        out, _ = run_aag18_majority(
            600, 201, 200, rng=np.random.default_rng(1), max_rounds=8000
        )
        assert out is True

    def test_polylog_speed_at_small_gap(self):
        """The synchronized cancel/double engine beats the 4-state protocol
        by orders of magnitude at gap 1."""
        _, rounds_aag = run_aag18_majority(
            600, 201, 200, rng=np.random.default_rng(2), max_rounds=8000
        )
        _, rounds_4s = run_four_state_majority(201, 200, rng=np.random.default_rng(2))
        assert rounds_aag < rounds_4s


class TestGS18Clock:
    def test_small_junta_synchronizes(self):
        params = GS18ClockParams()
        proto = make_gs18_clock(params=params)
        pop = gs18_population(proto.schema, 1000, junta_size=3, params=params)
        eng = CountEngine(proto, pop, rng=np.random.default_rng(0))
        eng.run(rounds=200)
        assert coherence(eng.population, params) > 0.9

    def test_clock_advances(self):
        params = GS18ClockParams()
        proto = make_gs18_clock(params=params)
        pop = gs18_population(proto.schema, 500, junta_size=2, params=params)
        eng = CountEngine(proto, pop, rng=np.random.default_rng(1))
        schema = proto.schema

        def majority_position(p):
            hist = {}
            for code, count in p.counts.items():
                pos = schema.value_of(code, params.field)
                hist[pos] = hist.get(pos, 0) + count
            return max(hist.items(), key=lambda kv: kv[1])[0]

        positions = set()
        for _ in range(10):
            eng.run(rounds=100)
            positions.add(majority_position(eng.population))
        assert len(positions) >= 3

    def test_huge_junta_stays_incoherent(self):
        """The paper's footnote 6: with #X = Theta(n) the GS18-style clock
        sits in the central area of its phase space."""
        params = GS18ClockParams()
        proto = make_gs18_clock(params=params)
        rng = np.random.default_rng(2)
        pop = gs18_population(
            proto.schema, 1000, junta_size=500, params=params,
            spread_positions=True, rng=rng,
        )
        eng = CountEngine(proto, pop, rng=rng)
        eng.run(rounds=300)
        assert coherence(eng.population, params) < 0.85
