"""Tests for protocols, threads and the scheduler's rule-draw convention."""

import pytest

from repro.core import Protocol, Rule, StateSchema, Thread, V, compose, single_thread


@pytest.fixture
def schema():
    s = StateSchema()
    s.flags("A", "B")
    return s


def simple_protocol(schema, name="p"):
    return single_thread(name, schema, [Rule(V("A"), None, {"B": True})])


class TestStructure:
    def test_single_thread(self, schema):
        proto = simple_protocol(schema)
        assert len(proto.threads) == 1
        assert len(proto.rules) == 1

    def test_empty_thread_rejected(self):
        with pytest.raises(ValueError):
            Thread("t", [])

    def test_duplicate_thread_names_rejected(self, schema):
        t = Thread("t", [Rule(None, None, {"A": True})])
        with pytest.raises(ValueError):
            Protocol("p", schema, [t, t])

    def test_thread_lookup(self, schema):
        proto = simple_protocol(schema)
        assert proto.thread("p").name == "p"
        with pytest.raises(KeyError):
            proto.thread("missing")

    def test_describe_contains_rules(self, schema):
        text = simple_protocol(schema).describe()
        assert "protocol p" in text and ">" in text


class TestDrawProbabilities:
    def test_uniform_within_thread(self, schema):
        rules = [Rule(None, None, {"A": True}), Rule(None, None, {"B": True})]
        proto = single_thread("p", schema, rules)
        probs = [p for _, p in proto.rule_draw_probabilities()]
        assert probs == [0.5, 0.5]

    def test_thread_selection_uniform(self, schema):
        t1 = Thread("t1", [Rule(None, None, {"A": True})])
        t2 = Thread("t2", [Rule(None, None, {"B": True}), Rule(None, None, {"B": False})])
        proto = Protocol("p", schema, [t1, t2])
        probs = dict(
            (rule.name or i, p)
            for i, (rule, p) in enumerate(proto.rule_draw_probabilities())
        )
        values = [p for _, p in proto.rule_draw_probabilities()]
        assert values == [0.5, 0.25, 0.25]

    def test_weights_respected(self, schema):
        rules = [
            Rule(None, None, {"A": True}, weight=3),
            Rule(None, None, {"B": True}, weight=1),
        ]
        proto = single_thread("p", schema, rules)
        values = [p for _, p in proto.rule_draw_probabilities()]
        assert values == [0.75, 0.25]


class TestTransition:
    def test_null_when_no_match(self, schema):
        proto = simple_protocol(schema)
        outcomes, p_change = proto.transition(0, 0)
        assert outcomes == [] and p_change == 0.0

    def test_identity_updates_fold_to_null(self, schema):
        proto = single_thread("p", schema, [Rule(V("A"), None, {"A": True})])
        code = schema.pack({"A": True})
        outcomes, p_change = proto.transition(code, 0)
        assert outcomes == [] and p_change == 0.0

    def test_matching_rule_probability(self, schema):
        proto = simple_protocol(schema)
        code = schema.pack({"A": True})
        outcomes, p_change = proto.transition(code, 0)
        assert p_change == pytest.approx(1.0)
        [(na, nb, p)] = outcomes
        assert schema.value_of(na, "B") is True

    def test_duplicate_outcomes_merged(self, schema):
        rules = [Rule(V("A"), None, {"B": True}), Rule(V("A"), None, {"B": True})]
        proto = single_thread("p", schema, rules)
        code = schema.pack({"A": True})
        outcomes, p_change = proto.transition(code, 0)
        assert len(outcomes) == 1
        assert p_change == pytest.approx(1.0)

    def test_probabilities_cached_consistently(self, schema):
        proto = simple_protocol(schema)
        first = proto.rule_draw_probabilities()
        second = proto.rule_draw_probabilities()
        assert first is second


class TestComposition:
    def test_compose_shares_schema(self, schema):
        p1 = simple_protocol(schema, "p1")
        p2 = single_thread("p2", schema, [Rule(V("B"), None, {"A": False})])
        combined = compose("both", p1, p2)
        assert len(combined.threads) == 2

    def test_compose_rejects_foreign_schema(self, schema):
        other_schema = StateSchema()
        other_schema.flags("A", "B")
        p1 = simple_protocol(schema, "p1")
        p2 = simple_protocol(other_schema, "p2")
        with pytest.raises(ValueError):
            compose("both", p1, p2)

    def test_composition_dilutes_rates(self, schema):
        p1 = simple_protocol(schema, "p1")
        p2 = single_thread("p2", schema, [Rule(V("A"), None, {"A": False})])
        combined = compose("both", p1, p2)
        code = schema.pack({"A": True})
        _, p_change = combined.transition(code, 0)
        assert p_change == pytest.approx(1.0)  # both rules fire on this pair
        _, p_single = p1.transition(code, 0)
        assert p_single == pytest.approx(1.0)

    def test_layering_check(self, schema):
        t1 = Thread("lower", [Rule(None, None, {"A": True})], writes=("A",))
        t2 = Thread("upper", [Rule(None, None, {"A": False})], writes=("A",))
        proto = Protocol("p", schema, [t1, t2])
        with pytest.raises(ValueError):
            proto.check_layering()

    def test_layering_ok_when_disjoint(self, schema):
        t1 = Thread("lower", [Rule(None, None, {"A": True})], writes=("A",))
        t2 = Thread("upper", [Rule(None, None, {"B": True})], writes=("B",), reads=("A",))
        Protocol("p", schema, [t1, t2]).check_layering()
