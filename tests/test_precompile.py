"""Tests for precompilation (Fig. 1 assignments, Fig. 2 branching, padding)."""

import pytest

from repro.core import Rule, StateSchema, V
from repro.core.formula import TRUE
from repro.lang import (
    Assign,
    Execute,
    IfExists,
    Program,
    Repeat,
    RepeatLog,
    ThreadDef,
    VarDecl,
    precompile,
)
from repro.lang.precompile import LeafNode, LoopNode


def program_of(body):
    return Program(
        "P",
        [VarDecl("L", init=True), VarDecl("M", init=False)],
        [ThreadDef("Main", body=Repeat(body), uses=("L", "M"))],
    )


class TestAssignLowering:
    def test_assignment_becomes_two_leaves(self):
        pre = precompile(program_of([Assign("L", V("M"))]))
        leaves = [leaf for _, leaf in pre.leaves() if not leaf.is_nil]
        assert len(leaves) == 2
        assert leaves[0].label.startswith("arm")
        assert leaves[1].label.startswith("assign")

    def test_trigger_flag_allocated(self):
        pre = precompile(program_of([Assign("L", V("M"))]))
        assert any(flag.startswith("K") for flag in pre.aux_flags)

    def test_fire_leaf_sets_and_unsets(self):
        pre = precompile(program_of([Assign("L", V("M"))]))
        fire = [leaf for _, leaf in pre.leaves() if leaf.label.startswith("assign")][0]
        assert len(fire.rules) == 2  # set branch and unset branch

    def test_random_assignment_single_coin_rule(self):
        pre = precompile(program_of([Assign("L", random=True)]))
        fire = [leaf for _, leaf in pre.leaves() if leaf.label.startswith("assign")][0]
        assert len(fire.rules) == 1
        assert len(fire.rules[0].branches) == 2

    def test_assignment_semantics_via_rules(self):
        """The Fig. 1 rules implement the assignment on a concrete state."""
        pre = precompile(program_of([Assign("L", V("M"))]))
        schema = StateSchema()
        schema.flags("L", "M")
        for flag in pre.aux_flags:
            schema.flag(flag)
        trigger = pre.aux_flags[0]
        fire = [leaf for _, leaf in pre.leaves() if leaf.label.startswith("assign")][0]
        armed_with_m = schema.pack({"L": False, "M": True, trigger: True})
        for rule in fire.rules:
            outs = rule.outcomes(schema, armed_with_m, 0)
            if outs:
                new_code = outs[0][0]
                assert schema.value_of(new_code, "L") is True
                assert schema.value_of(new_code, trigger) is False


class TestBranchLowering:
    def test_if_produces_clear_and_eval_leaves(self):
        pre = precompile(program_of([IfExists(V("M"), [Assign("L", TRUE)])]))
        labels = [leaf.label for _, leaf in pre.leaves()]
        assert any(l.startswith("clear") for l in labels)
        assert any(l.startswith("eval") for l in labels)

    def test_branch_rules_guarded_by_flag(self):
        pre = precompile(program_of([IfExists(V("M"), [Assign("L", TRUE)])]))
        z_flag = [f for f in pre.aux_flags if f.startswith("Z")][0]
        schema = StateSchema()
        schema.flags("L", "M")
        for flag in pre.aux_flags:
            schema.flag(flag)
        arm = [leaf for _, leaf in pre.leaves() if leaf.label.startswith("arm")][0]
        # without the Z flag the guarded arm rule must not fire
        plain = schema.pack({})
        assert all(not r.outcomes(schema, plain, plain) for r in arm.rules)
        flagged = schema.pack({z_flag: True})
        assert any(r.outcomes(schema, flagged, flagged) for r in arm.rules)

    def test_else_rules_guarded_negatively(self):
        pre = precompile(
            program_of(
                [IfExists(V("M"), [Assign("L", TRUE)], [Assign("L", V("M"))])]
            )
        )
        z_flag = [f for f in pre.aux_flags if f.startswith("Z")][0]
        schema = StateSchema()
        schema.flags("L", "M")
        for flag in pre.aux_flags:
            schema.flag(flag)
        merged = [leaf for _, leaf in pre.leaves() if "|" in leaf.label]
        assert merged  # then/else leaves were unified
        leaf = merged[0]
        # exactly one side fires for each valuation of Z
        z_on = schema.pack({z_flag: True})
        z_off = schema.pack({})
        on_fires = sum(bool(r.outcomes(schema, z_on, z_on)) for r in leaf.rules)
        off_fires = sum(bool(r.outcomes(schema, z_off, z_off)) for r in leaf.rules)
        assert on_fires >= 1 and off_fires >= 1

    def test_unbalanced_branches_padded(self):
        pre = precompile(
            program_of(
                [
                    IfExists(
                        V("M"),
                        [Assign("L", TRUE), Assign("M", TRUE)],
                        [Assign("L", V("M"))],
                    )
                ]
            )
        )
        # no error and the tree is uniform
        depths = {len(path) for path, _ in pre.leaves()}
        assert len(depths) == 1


class TestTreeShape:
    def test_flat_program_depth_one(self):
        pre = precompile(program_of([Execute([Rule(V("L"), None, {"L": False})])]))
        assert pre.depth == 1

    def test_nested_loop_depth(self):
        body = [RepeatLog([Execute([Rule(V("L"), None, {"L": False})])])]
        pre = precompile(program_of(body))
        assert pre.depth == 2

    def test_all_leaves_at_uniform_depth(self):
        body = [
            Assign("L", TRUE),
            RepeatLog([Assign("M", TRUE), Assign("L", V("M"))]),
        ]
        pre = precompile(program_of(body))
        depths = {len(path) for path, _ in pre.leaves()}
        assert depths == {pre.depth}

    def test_all_nodes_have_width_children(self):
        body = [
            Assign("L", TRUE),
            RepeatLog([Assign("M", TRUE)]),
        ]
        pre = precompile(program_of(body))

        def check(node):
            if isinstance(node, LeafNode):
                return
            assert len(node.children) == pre.width
            for child in node.children:
                check(child)

        for child in pre.root.children:
            check(child)
        assert len(pre.root.children) == pre.width

    def test_leaf_paths_in_program_order(self):
        body = [Assign("L", TRUE), Assign("M", TRUE)]
        pre = precompile(program_of(body))
        paths = [path for path, leaf in pre.leaves() if not leaf.is_nil]
        assert paths == sorted(paths)

    def test_majority_tree_depth_two(self):
        from repro.protocols import majority_program

        pre = precompile(majority_program())
        assert pre.depth == 2

    def test_leader_election_tree_depth_one(self):
        from repro.protocols import leader_election_program

        pre = precompile(leader_election_program())
        assert pre.depth == 1
        assert pre.width == 10

    def test_pretty_renders(self):
        from repro.protocols import leader_election_program

        pre = precompile(leader_election_program())
        assert "repeat-forever" in pre.pretty()
