"""Replica fan-out: pickling, seeding, aggregation, and the process pool.

The spawn-based pool requires every payload to round-trip through pickle
with the protocol/population *sharing one schema object* on the far side
(engines check schema identity); these tests pin that contract down
before exercising run_replicas / map_replicas serially and across real
worker processes.
"""

import functools
import pickle

import numpy as np
import pytest

from repro.analysis import (
    ConvergenceStats,
    EngineTally,
    aggregate_convergence,
    aggregate_engine_stats,
)
from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import ReplicaSet, map_replicas, run_replicas
from repro.engine.replicas import (
    ReplicaRecord,
    _resolve_processes,
    run_single_replica,
    spawn_seeds,
)


def make_epidemic():
    schema = StateSchema()
    schema.flag("I")
    protocol = single_thread(
        "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
    )
    population = Population.from_groups(
        schema, [({"I": True}, 1), ({"I": False}, 299)]
    )
    return protocol, population


def all_infected(pop):
    return pop.all_satisfy(V("I"))


class TestPickling:
    def test_protocol_population_round_trip(self):
        protocol, population = make_epidemic()
        proto2, pop2 = pickle.loads(pickle.dumps((protocol, population)))
        # schema identity must survive the joint round-trip: engines verify
        # protocol.schema is population.schema
        assert proto2.schema is pop2.schema
        assert pop2.n == population.n
        assert pop2.count(V("I")) == 1

    def test_rules_usable_after_round_trip(self):
        protocol, population = make_epidemic()
        proto2, pop2 = pickle.loads(pickle.dumps((protocol, population)))
        from repro.engine import CountEngine

        eng = CountEngine(proto2, pop2, rng=np.random.default_rng(0))
        eng.run(stop=all_infected)
        assert pop2.count(V("I")) == 300

    def test_seed_sequences_pickle(self):
        seeds = spawn_seeds(7, 4)
        seeds2 = pickle.loads(pickle.dumps(seeds))
        for a, b in zip(seeds, seeds2):
            assert (
                np.random.default_rng(a).integers(1 << 30)
                == np.random.default_rng(b).integers(1 << 30)
            )


class TestSpawnSeeds:
    def test_independent_streams(self):
        seeds = spawn_seeds(0, 8)
        draws = {np.random.default_rng(s).integers(1 << 62) for s in seeds}
        assert len(draws) == 8

    def test_deterministic(self):
        a = [s.generate_state(2).tolist() for s in spawn_seeds(42, 3)]
        b = [s.generate_state(2).tolist() for s in spawn_seeds(42, 3)]
        assert a == b


class TestRunReplicas:
    def test_serial(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol,
            population,
            replicas=6,
            engine="count",
            seed=1,
            processes=1,
            stop=all_infected,
        )
        assert isinstance(rs, ReplicaSet)
        assert len(rs) == 6
        assert rs.converged_fraction == 1.0
        assert (rs.rounds > 0).all()
        assert (rs.interactions > 0).all()

    def test_replicas_are_independent(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=8, seed=0, processes=1,
            stop=all_infected,
        )
        assert len(set(rs.interactions.tolist())) > 1

    def test_deterministic_given_seed(self):
        protocol, population = make_epidemic()
        kwargs = dict(replicas=3, engine="count", seed=5, processes=1,
                      stop=all_infected)
        a = run_replicas(protocol, population, **kwargs)
        b = run_replicas(protocol, population, **kwargs)
        assert a.interactions.tolist() == b.interactions.tolist()

    def test_source_population_untouched(self):
        protocol, population = make_epidemic()
        before = dict(population.counts)
        run_replicas(protocol, population, replicas=2, seed=0, processes=1,
                     stop=all_infected)
        assert dict(population.counts) == before

    def test_engine_name_recorded(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=2, engine="batch", seed=0,
            processes=1, stop=all_infected,
        )
        assert all(r.extra["engine"] == "batch" for r in rs)

    def test_rejects_zero_replicas(self):
        protocol, population = make_epidemic()
        with pytest.raises(ValueError):
            run_replicas(protocol, population, replicas=0, stop=all_infected)

    def test_rounds_budget_without_stop(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=2, engine="count", seed=0,
            processes=1, rounds=2.0,
        )
        assert all(r.converged is None for r in rs)
        assert (rs.rounds >= 2.0).all()

    @pytest.mark.slow
    def test_process_pool(self):
        # real spawn workers: payloads and records cross process boundaries
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol,
            population,
            replicas=4,
            engine="count",
            seed=3,
            processes=2,
            stop=all_infected,
        )
        assert len(rs) == 4
        assert rs.converged_fraction == 1.0
        # same seeds => same trajectories as the serial path
        serial = run_replicas(
            protocol, population, replicas=4, engine="count", seed=3,
            processes=1, stop=all_infected,
        )
        assert rs.interactions.tolist() == serial.interactions.tolist()

    @pytest.mark.slow
    def test_determinism_across_process_counts(self):
        # the CI determinism smoke: same root seed, 1 vs 4 workers
        protocol, population = make_epidemic()
        kwargs = dict(replicas=8, engine="count", seed=12, stop=all_infected)
        serial = run_replicas(protocol, population, processes=1, **kwargs)
        pooled = run_replicas(protocol, population, processes=4, **kwargs)
        assert serial.interactions.tolist() == pooled.interactions.tolist()
        assert serial.rounds.tolist() == pooled.rounds.tolist()
        assert [r.converged for r in serial] == [r.converged for r in pooled]
        assert [r.seed for r in serial] == [r.seed for r in pooled]


def _square(seed_seq, offset=0):
    value = int(np.random.default_rng(seed_seq).integers(100))
    return value * value + offset


class TestMapReplicas:
    def test_serial(self):
        results = map_replicas(_square, 5, seed=0, processes=1)
        assert len(results) == 5

    def test_partial_task(self):
        plain = map_replicas(_square, 3, seed=1, processes=1)
        shifted = map_replicas(
            functools.partial(_square, offset=7), 3, seed=1, processes=1
        )
        assert [s - 7 for s in shifted] == plain

    @pytest.mark.slow
    def test_process_pool_matches_serial(self):
        serial = map_replicas(_square, 4, seed=2, processes=1)
        pooled = map_replicas(_square, 4, seed=2, processes=2)
        assert pooled == serial


class TestAggregation:
    def _records(self):
        return [
            ReplicaRecord(index=k, rounds=10.0 + k, interactions=1000 + k,
                          wall=0.5, converged=k < 3)
            for k in range(4)
        ]

    def test_aggregate(self):
        stats = aggregate_convergence(self._records())
        assert isinstance(stats, ConvergenceStats)
        assert stats.replicas == 4
        assert stats.converged_fraction == 0.75
        assert stats.rounds.median == pytest.approx(11.5)
        assert stats.wall_total == pytest.approx(2.0)

    def test_accepts_dicts(self):
        stats = aggregate_convergence(
            [{"rounds": 5.0}, {"rounds": 7.0}]
        )
        assert stats.replicas == 2
        assert stats.interactions is None
        assert stats.converged_fraction is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_convergence([])

    def test_replica_set_summary(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=3, engine="count", seed=0,
            processes=1, stop=all_infected,
        )
        stats = rs.summary()
        assert stats.replicas == 3
        assert "3 replicas" in str(stats)

    def test_missing_rounds_raises_clear_error(self):
        records = [
            ReplicaRecord(index=0, rounds=5.0, interactions=10, wall=0.1),
            ReplicaRecord(index=7, rounds=None, interactions=10, wall=0.1),
        ]
        with pytest.raises(ValueError) as excinfo:
            aggregate_convergence(records)
        message = str(excinfo.value)
        assert "'rounds'" in message
        assert "record 1" in message
        assert "index 7" in message

    def test_missing_rounds_in_dict_records(self):
        with pytest.raises(ValueError, match="'rounds'"):
            aggregate_convergence([{"rounds": 3.0}, {"interactions": 9}])


class CountingStop:
    """Stop predicate that counts its evaluations (picklable)."""

    def __init__(self):
        self.calls = 0

    def __call__(self, population):
        self.calls += 1
        return population.all_satisfy(V("I"))


class TestStopSingleEvaluation:
    """The worker reuses the engine's own stop verdict (no double eval)."""

    @pytest.mark.parametrize("engine", ["count", "batch"])
    def test_stop_not_reevaluated_on_final_population(self, engine):
        protocol, population = make_epidemic()
        stop = CountingStop()
        record = run_single_replica(
            0, np.random.SeedSequence(3), protocol, population,
            engine=engine, stop=stop,
        )
        assert record.converged is True
        # every call happened inside the engine loop: the engine's own
        # counter and the predicate's agree, so no extra post-hoc call
        assert record.stats["stop_evals"] == stop.calls

    def test_hysteresis_predicate_not_flipped(self):
        # a latch that answers True exactly once (the E4 clock-phase
        # shape): a second evaluation would flip the reported outcome
        class OneShot:
            fired = False

            def __call__(self, population):
                if self.fired:
                    return False
                if population.all_satisfy(V("I")):
                    self.fired = True
                    return True
                return False

        protocol, population = make_epidemic()
        record = run_single_replica(
            0, np.random.SeedSequence(4), protocol, population,
            engine="count", stop=OneShot(),
        )
        assert record.converged is True

    def test_silent_budget_run_still_fills_converged(self):
        # a rounds-budget run whose engine never evaluates stop falls
        # back to one (and only one) final evaluation
        protocol, population = make_epidemic()
        stop = CountingStop()
        record = run_single_replica(
            0, np.random.SeedSequence(5), protocol, population,
            engine="count", stop=stop, run_kwargs={"rounds": 400.0},
        )
        assert record.converged is not None


class TestResolveProcesses:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "1")
        assert _resolve_processes(3, replicas=8) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.replicas.available_cpus", lambda: 16
        )
        monkeypatch.setenv("REPRO_PROCESSES", "2")
        assert _resolve_processes(None, replicas=8) == 2

    def test_env_capped_at_affinity(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.replicas.available_cpus", lambda: 2
        )
        monkeypatch.setenv("REPRO_PROCESSES", "64")
        assert _resolve_processes(None, replicas=8) == 2

    def test_default_is_affinity(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        monkeypatch.setattr(
            "repro.engine.replicas.available_cpus", lambda: 4
        )
        assert _resolve_processes(None, replicas=8) == 4

    def test_capped_at_replicas(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        monkeypatch.setattr(
            "repro.engine.replicas.available_cpus", lambda: 64
        )
        assert _resolve_processes(None, replicas=3) == 3

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "many")
        with pytest.raises(ValueError, match="REPRO_PROCESSES"):
            _resolve_processes(None, replicas=8)


class TestEngineStatsThreading:
    def _replica_set(self, engine="batch"):
        protocol, population = make_epidemic()
        return run_replicas(
            protocol, population, replicas=4, engine=engine, seed=2,
            processes=1, stop=all_infected,
        )

    def test_records_carry_stats_and_seed(self):
        rs = self._replica_set()
        for record in rs:
            assert record.engine == "batch"
            assert record.stats["engine"] == "batch"
            assert record.stats["interactions"] == record.interactions
            assert record.seed["entropy"] == 2
            assert record.seed["spawn_key"] == [record.index]

    def test_summary_aggregates_per_engine(self):
        rs = self._replica_set()
        summary = rs.summary()
        assert set(summary.engines) == {"batch"}
        tally = summary.engines["batch"]
        assert isinstance(tally, EngineTally)
        assert tally.replicas == 4
        assert tally.counters["interactions"] == int(rs.interactions.sum())
        assert tally.counters["runs"] == 4
        assert "kernel_seconds" in tally.counters
        assert "batch x4" in str(summary)

    def test_stats_by_engine(self):
        rs = self._replica_set(engine="count")
        tallies = rs.stats_by_engine()
        assert set(tallies) == {"count"}
        assert tallies["count"].counters["events"] > 0
        assert "engine count (4 replicas)" in tallies["count"].format()

    def test_table_cache_provenance_tallied(self):
        rs = self._replica_set()
        tally = rs.stats_by_engine()["batch"]
        statuses = tally.categories.get("table_cache")
        assert statuses and sum(statuses.values()) == 4
        assert tally.cache_hit_rate is not None

    def test_records_without_stats_are_skipped(self):
        tallies = aggregate_engine_stats(
            [ReplicaRecord(index=0, rounds=1.0, interactions=5, wall=0.1)]
        )
        assert tallies == {}
