"""Replica fan-out: pickling, seeding, aggregation, and the process pool.

The spawn-based pool requires every payload to round-trip through pickle
with the protocol/population *sharing one schema object* on the far side
(engines check schema identity); these tests pin that contract down
before exercising run_replicas / map_replicas serially and across real
worker processes.
"""

import functools
import pickle

import numpy as np
import pytest

from repro.analysis import ConvergenceStats, aggregate_convergence
from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import ReplicaSet, map_replicas, run_replicas
from repro.engine.replicas import ReplicaRecord, spawn_seeds


def make_epidemic():
    schema = StateSchema()
    schema.flag("I")
    protocol = single_thread(
        "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
    )
    population = Population.from_groups(
        schema, [({"I": True}, 1), ({"I": False}, 299)]
    )
    return protocol, population


def all_infected(pop):
    return pop.all_satisfy(V("I"))


class TestPickling:
    def test_protocol_population_round_trip(self):
        protocol, population = make_epidemic()
        proto2, pop2 = pickle.loads(pickle.dumps((protocol, population)))
        # schema identity must survive the joint round-trip: engines verify
        # protocol.schema is population.schema
        assert proto2.schema is pop2.schema
        assert pop2.n == population.n
        assert pop2.count(V("I")) == 1

    def test_rules_usable_after_round_trip(self):
        protocol, population = make_epidemic()
        proto2, pop2 = pickle.loads(pickle.dumps((protocol, population)))
        from repro.engine import CountEngine

        eng = CountEngine(proto2, pop2, rng=np.random.default_rng(0))
        eng.run(stop=all_infected)
        assert pop2.count(V("I")) == 300

    def test_seed_sequences_pickle(self):
        seeds = spawn_seeds(7, 4)
        seeds2 = pickle.loads(pickle.dumps(seeds))
        for a, b in zip(seeds, seeds2):
            assert (
                np.random.default_rng(a).integers(1 << 30)
                == np.random.default_rng(b).integers(1 << 30)
            )


class TestSpawnSeeds:
    def test_independent_streams(self):
        seeds = spawn_seeds(0, 8)
        draws = {np.random.default_rng(s).integers(1 << 62) for s in seeds}
        assert len(draws) == 8

    def test_deterministic(self):
        a = [s.generate_state(2).tolist() for s in spawn_seeds(42, 3)]
        b = [s.generate_state(2).tolist() for s in spawn_seeds(42, 3)]
        assert a == b


class TestRunReplicas:
    def test_serial(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol,
            population,
            replicas=6,
            engine="count",
            seed=1,
            processes=1,
            stop=all_infected,
        )
        assert isinstance(rs, ReplicaSet)
        assert len(rs) == 6
        assert rs.converged_fraction == 1.0
        assert (rs.rounds > 0).all()
        assert (rs.interactions > 0).all()

    def test_replicas_are_independent(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=8, seed=0, processes=1,
            stop=all_infected,
        )
        assert len(set(rs.interactions.tolist())) > 1

    def test_deterministic_given_seed(self):
        protocol, population = make_epidemic()
        kwargs = dict(replicas=3, engine="count", seed=5, processes=1,
                      stop=all_infected)
        a = run_replicas(protocol, population, **kwargs)
        b = run_replicas(protocol, population, **kwargs)
        assert a.interactions.tolist() == b.interactions.tolist()

    def test_source_population_untouched(self):
        protocol, population = make_epidemic()
        before = dict(population.counts)
        run_replicas(protocol, population, replicas=2, seed=0, processes=1,
                     stop=all_infected)
        assert dict(population.counts) == before

    def test_engine_name_recorded(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=2, engine="batch", seed=0,
            processes=1, stop=all_infected,
        )
        assert all(r.extra["engine"] == "batch" for r in rs)

    def test_rejects_zero_replicas(self):
        protocol, population = make_epidemic()
        with pytest.raises(ValueError):
            run_replicas(protocol, population, replicas=0, stop=all_infected)

    def test_rounds_budget_without_stop(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=2, engine="count", seed=0,
            processes=1, rounds=2.0,
        )
        assert all(r.converged is None for r in rs)
        assert (rs.rounds >= 2.0).all()

    @pytest.mark.slow
    def test_process_pool(self):
        # real spawn workers: payloads and records cross process boundaries
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol,
            population,
            replicas=4,
            engine="count",
            seed=3,
            processes=2,
            stop=all_infected,
        )
        assert len(rs) == 4
        assert rs.converged_fraction == 1.0
        # same seeds => same trajectories as the serial path
        serial = run_replicas(
            protocol, population, replicas=4, engine="count", seed=3,
            processes=1, stop=all_infected,
        )
        assert rs.interactions.tolist() == serial.interactions.tolist()


def _square(seed_seq, offset=0):
    value = int(np.random.default_rng(seed_seq).integers(100))
    return value * value + offset


class TestMapReplicas:
    def test_serial(self):
        results = map_replicas(_square, 5, seed=0, processes=1)
        assert len(results) == 5

    def test_partial_task(self):
        plain = map_replicas(_square, 3, seed=1, processes=1)
        shifted = map_replicas(
            functools.partial(_square, offset=7), 3, seed=1, processes=1
        )
        assert [s - 7 for s in shifted] == plain

    @pytest.mark.slow
    def test_process_pool_matches_serial(self):
        serial = map_replicas(_square, 4, seed=2, processes=1)
        pooled = map_replicas(_square, 4, seed=2, processes=2)
        assert pooled == serial


class TestAggregation:
    def _records(self):
        return [
            ReplicaRecord(index=k, rounds=10.0 + k, interactions=1000 + k,
                          wall=0.5, converged=k < 3)
            for k in range(4)
        ]

    def test_aggregate(self):
        stats = aggregate_convergence(self._records())
        assert isinstance(stats, ConvergenceStats)
        assert stats.replicas == 4
        assert stats.converged_fraction == 0.75
        assert stats.rounds.median == pytest.approx(11.5)
        assert stats.wall_total == pytest.approx(2.0)

    def test_accepts_dicts(self):
        stats = aggregate_convergence(
            [{"rounds": 5.0}, {"rounds": 7.0}]
        )
        assert stats.replicas == 2
        assert stats.interactions is None
        assert stats.converged_fraction is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_convergence([])

    def test_replica_set_summary(self):
        protocol, population = make_epidemic()
        rs = run_replicas(
            protocol, population, replicas=3, engine="count", seed=0,
            processes=1, stop=all_infected,
        )
        stats = rs.summary()
        assert stats.replicas == 3
        assert "3 replicas" in str(stats)
