"""Survivability tests: sandboxes, quotas, crash recovery, drain, client.

This suite drives *real* processes wherever the claim is about process
boundaries: quota kills run actual sandbox children under
``resource.setrlimit``, the crash-recovery test ``kill -KILL``\\ s a real
``python -m repro serve`` instance mid-sweep and proves the restarted
server auto-resumes the run **bit-identically** to an uninterrupted
control, and the drain test delivers a real ``SIGTERM``.  Deterministic
fault points come from :class:`repro.faults.ServiceFaultPlan`, shipped
to the sandbox children through the environment and scoped by label so a
faulted job and a healthy control can share one server.

The :class:`repro.service.client.ServiceClient` tests use a scripted
stub HTTP server to pin the retry discipline exactly: Retry-After wins
over computed backoff, backoff doubles up to the cap, non-retryable
statuses raise immediately, retried submits reuse one idempotency key,
and event streams reconnect from their cursor without dropping or
repeating events.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

import repro
from repro import EngineConfig, build_workload, load_manifest, run_replicas
from repro.faults import SERVICE_FAULT_ENV, ServiceFaultPlan, tear_final_line
from repro.obs import resume_sweep
from repro.service import QuotaSpec, ServiceApp, ServiceClient, SubmitRequest
from repro.service.client import ServiceClientError
from repro.service.store import RunStore

SUBMIT = {
    "workload": "epidemic",
    "params": {"n": 120},
    "replicas": 3,
    "seed": 9,
    "config": {"engine": "batch"},
}

#: The multi-chunk sweep used by the kill/drain tests: 6 checkpoint
#: groups give the chaos a window to strike between any two of them.
SWEEP = {
    "workload": "epidemic",
    "params": {"n": 120},
    "replicas": 6,
    "seed": 7,
    "config": {"engine": "batch"},
}


def fault_env(monkeypatch, plan: ServiceFaultPlan) -> None:
    monkeypatch.setenv(SERVICE_FAULT_ENV, plan.to_env()[SERVICE_FAULT_ENV])


def library_records(spec):
    workload = build_workload(spec["workload"], **spec["params"])
    rs = run_replicas(
        workload.protocol, workload.population, replicas=spec["replicas"],
        config=EngineConfig.from_dict(spec["config"]), seed=spec["seed"],
        processes=1, stop=workload.stop,
    )
    return {r.index: r for r in rs}


def assert_bit_identical(manifest_text, spec, tmp_path, name="served.jsonl"):
    """Every manifest record equals the uninterrupted library control."""
    path = tmp_path / name
    path.write_text(manifest_text)
    served = load_manifest(str(path))
    control = library_records(spec)
    assert sorted(r.index for r in served.records) == sorted(control)
    for index, record in control.items():
        loaded = served.record(index)
        assert loaded.interactions == record.interactions, index
        assert loaded.rounds == record.rounds, index
        assert loaded.converged == record.converged, index


# -- quota kills through real sandbox children --------------------------------

@pytest.mark.skipif(os.name != "posix", reason="rlimit sandbox is POSIX-only")
class TestQuotaKills:
    def _serve(self, tmp_path, workers=1):
        app = ServiceApp(str(tmp_path / "runs"), workers=workers, capacity=8)
        handle = app.start_background()
        return app, handle, ServiceClient(port=handle.port)

    def test_memory_quota_kill_names_limit_and_spares_neighbors(
        self, tmp_path, monkeypatch
    ):
        # the hog allocates 4 GiB under a 2 GiB address-space quota; the
        # unlabelled healthy job shares the server and must finish
        fault_env(monkeypatch, ServiceFaultPlan(
            hog_memory_bytes=4 << 30, only_label="hog",
        ))
        app, handle, client = self._serve(tmp_path, workers=2)
        try:
            killed = client.submit(dict(
                SUBMIT, label="hog",
                quota={"memory_bytes": 2 << 30, "wall_seconds": 120},
            ))
            healthy = client.submit(SUBMIT)
            final = client.wait(killed["run_id"], timeout=120)
            assert final["state"] == "killed"
            assert final["limit"] == "memory_bytes"
            assert final["quota"] == 2 << 30
            done = client.wait(healthy["run_id"], timeout=120)
            assert done["state"] == "done" and done["done"] == 3
        finally:
            handle.stop()

    def test_wall_quota_kill(self, tmp_path, monkeypatch):
        fault_env(monkeypatch, ServiceFaultPlan(
            sleep_seconds=60.0, only_label="sleeper",
        ))
        app, handle, client = self._serve(tmp_path)
        try:
            accepted = client.submit(dict(
                SUBMIT, label="sleeper", quota={"wall_seconds": 1.5},
            ))
            final = client.wait(accepted["run_id"], timeout=60)
            assert final["state"] == "killed"
            assert final["limit"] == "wall_seconds"
        finally:
            handle.stop()

    def test_cpu_quota_kill(self, tmp_path, monkeypatch):
        fault_env(monkeypatch, ServiceFaultPlan(
            spin_cpu_seconds=60.0, only_label="spinner",
        ))
        app, handle, client = self._serve(tmp_path)
        try:
            accepted = client.submit(dict(
                SUBMIT, label="spinner",
                quota={"cpu_seconds": 1, "wall_seconds": 120},
            ))
            final = client.wait(accepted["run_id"], timeout=120)
            assert final["state"] == "killed"
            assert final["limit"] == "cpu_seconds"
        finally:
            handle.stop()

    def test_manifest_quota_kill_leaves_resumable_manifest(self, tmp_path):
        # 64 bytes cannot hold even one checkpoint group: the job dies
        # after group 0 as killed/manifest_bytes, and the partial
        # manifest still resumes to the full bit-identical sweep
        app, handle, client = self._serve(tmp_path)
        try:
            accepted = client.submit(dict(
                SUBMIT, quota={"manifest_bytes": 64, "wall_seconds": 120},
            ))
            final = client.wait(accepted["run_id"], timeout=120)
            assert final["state"] == "killed"
            assert final["limit"] == "manifest_bytes"
            manifest_path = app.store.manifest_path(accepted["run_id"])
            resumed = resume_sweep(manifest_path, processes=1)
            assert len(resumed) == SUBMIT["replicas"]
            control = library_records(SUBMIT)
            for record in resumed.records:
                assert record.interactions == control[record.index].interactions
        finally:
            handle.stop()

    def test_quota_above_server_ceiling_is_400(self, tmp_path):
        app = ServiceApp(
            str(tmp_path / "runs"), workers=1,
            quota=QuotaSpec(memory_bytes=1 << 30), sandbox=False,
        )
        handle = app.start_background()
        try:
            client = ServiceClient(port=handle.port, retries=0)
            with pytest.raises(ServiceClientError) as err:
                client.submit(dict(SUBMIT, quota={"memory_bytes": 2 << 30}))
            assert err.value.status == 400
            assert "ceiling" in err.value.payload["error"]
        finally:
            handle.stop()


# -- crash-looping worker: bounded retries, resume from checkpoint ------------

@pytest.mark.skipif(os.name != "posix", reason="sandbox is POSIX-only")
class TestWorkerCrashRetry:
    def test_crash_after_checkpoint_retries_to_bit_identical_done(
        self, tmp_path, monkeypatch
    ):
        # the child dies right after group 0's checkpoint; the respawn
        # resumes from the manifest (the fault is one-shot because a
        # recorded group never re-checkpoints) and completes
        fault_env(monkeypatch, ServiceFaultPlan(
            kill_after_group=0, only_label="crashy",
        ))
        app = ServiceApp(str(tmp_path / "runs"), workers=1, retries=1)
        handle = app.start_background()
        try:
            client = ServiceClient(port=handle.port)
            accepted = client.submit(dict(SUBMIT, label="crashy"))
            final = client.wait(accepted["run_id"], timeout=120)
            assert final["state"] == "done" and final["done"] == 3
            ops = [e["op"] for e in app.store.read_journal(accepted["run_id"])]
            assert "retry" in ops
            assert_bit_identical(
                client.manifest_text(accepted["run_id"]), SUBMIT, tmp_path
            )
        finally:
            handle.stop()

    def test_crash_loop_exhausts_retries_to_failed(self, tmp_path, monkeypatch):
        # a child that dies on startup on every attempt never makes
        # progress: after the retry budget the job is failed, not a 500,
        # and not an interrupted run that recovery would respawn forever
        fault_env(monkeypatch, ServiceFaultPlan(
            crash_on_start=True, only_label="crashy",
        ))
        app = ServiceApp(str(tmp_path / "runs"), workers=1, retries=1)
        handle = app.start_background()
        try:
            client = ServiceClient(port=handle.port)
            accepted = client.submit(dict(SUBMIT, label="crashy"))
            final = client.wait(accepted["run_id"], timeout=120)
            assert final["state"] == "failed"
            assert "crashed" in final.get("error", "")
        finally:
            handle.stop()


# -- torn on-disk state -------------------------------------------------------

class TestTornState:
    def _run(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        run_id = store.create(SubmitRequest.from_payload(SUBMIT))
        return store, run_id

    def test_status_falls_back_to_journal_on_torn_file(self, tmp_path):
        store, run_id = self._run(tmp_path)
        store.append_journal(run_id, "started")
        status_path = os.path.join(store.run_dir(run_id), "status.json")
        with open(status_path, "w") as fh:
            fh.write('{"run_id": "' + run_id + '", "sta')  # torn mid-write
        status = store.status(run_id)
        assert status["state"] == "running"
        assert status["reconstructed"] is True

    def test_status_falls_back_to_journal_on_empty_file(self, tmp_path):
        store, run_id = self._run(tmp_path)
        status_path = os.path.join(store.run_dir(run_id), "status.json")
        open(status_path, "w").close()
        assert store.status(run_id)["state"] == "queued"

    def test_torn_journal_line_is_dropped_cleanly(self, tmp_path):
        store, run_id = self._run(tmp_path)
        store.append_journal(run_id, "started")
        store.append_journal(run_id, "checkpoint", group=0, done=1)
        tear_final_line(store.journal_path(run_id))
        ops = [e["op"] for e in store.read_journal(run_id)]
        assert ops == ["accepted", "started"]
        assert run_id in store.scan_recoverable()

    def test_scan_recoverable_skips_settled_runs(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        req = SubmitRequest.from_payload(SUBMIT)
        settled = {}
        for op in ("done", "failed", "cancelled", "killed"):
            run_id = store.create(req)
            store.append_journal(run_id, "started")
            store.append_journal(run_id, op)
            settled[op] = run_id
        owing = store.create(req)
        store.append_journal(owing, "started")
        store.append_journal(owing, "checkpoint", group=0, done=1)
        assert store.scan_recoverable() == [owing]


# -- the real thing: kill -KILL the server, restart, auto-resume --------------

def _start_server(store, env_extra=None, args=()):
    """Launch ``python -m repro serve`` and wait for its bound port."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--store", store, "--port", "0", "--workers", "1", *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    lines = []
    ready = threading.Event()
    port = {}

    def pump():
        for line in proc.stdout:
            lines.append(line)
            match = re.search(r"listening on http://[^:]+:(\d+)", line)
            if match:
                port["port"] = int(match.group(1))
                ready.set()
        ready.set()  # EOF: let the waiter fail with the captured output

    threading.Thread(target=pump, daemon=True).start()
    if not ready.wait(60.0) or "port" not in port:
        proc.kill()
        raise AssertionError("server never came up:\n" + "".join(lines))
    return proc, port["port"]


def _wait_journal_op(store, run_id, op, timeout=60.0):
    path = os.path.join(store, run_id, "journal.jsonl")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path) as fh:
                for line in fh:
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if entry.get("op") == op:
                        return True
        time.sleep(0.05)
    return False


@pytest.mark.skipif(os.name != "posix", reason="signals are POSIX-only")
class TestKillRestart:
    def test_kill_nine_mid_run_resumes_bit_identical_on_restart(self, tmp_path):
        store = str(tmp_path / "runs")
        # pacing between groups gives the kill a deterministic window
        env = ServiceFaultPlan(
            pause_between_groups=0.3, only_label="victim",
        ).to_env()

        proc, port = _start_server(store, env_extra=env)
        run_id = None
        try:
            client = ServiceClient(port=port)
            accepted = client.submit(dict(SWEEP, label="victim"))
            run_id = accepted["run_id"]
            assert _wait_journal_op(store, run_id, "checkpoint")
            os.kill(proc.pid, signal.SIGKILL)  # no goodbyes
            proc.wait(timeout=30)
        finally:
            proc.kill()

        # mid-sweep wreckage: some records landed, the run is not settled
        partial = load_manifest(os.path.join(store, run_id, "manifest.jsonl"))
        assert 0 < len(partial) < SWEEP["replicas"]
        offline = RunStore(store)
        assert offline.status(run_id)["state"] not in (
            "done", "failed", "cancelled", "killed",
        )
        assert run_id in offline.scan_recoverable()

        # the restarted server recovers the run with no operator action
        proc2, port2 = _start_server(store, env_extra=env)
        try:
            client = ServiceClient(port=port2)
            final = client.wait(run_id, timeout=180)
            assert final["state"] == "done"
            assert final["done"] == SWEEP["replicas"]

            # ... bit-identical to an uninterrupted library control
            assert_bit_identical(client.manifest_text(run_id), SWEEP, tmp_path)
            # a replica recorded before the kill and one after both replay
            for index in (0, SWEEP["replicas"] - 1):
                assert client.replay(run_id, index)["match"] is True, index

            # the event sequence is continuous across the two server lives
            events = list(client.events(run_id, follow=False))
            seqs = [e["seq"] for e in events]
            assert seqs == list(range(len(seqs)))
            assert sum(1 for e in events if e["kind"] == "checkpoint") >= \
                SWEEP["replicas"]
            ops = [e["op"] for e in offline.read_journal(run_id)]
            assert "recovered" in ops and ops[-1] == "done"
        finally:
            proc2.kill()
            proc2.wait(timeout=30)


@pytest.mark.skipif(os.name != "posix", reason="signals are POSIX-only")
class TestGracefulDrain:
    def test_sigterm_stops_accepting_and_exits_resumable(self, tmp_path):
        store = str(tmp_path / "runs")
        # a long pause between groups holds the job mid-run so the test
        # can observe the draining window
        env = ServiceFaultPlan(
            pause_between_groups=1.0, only_label="drainee",
        ).to_env()
        proc, port = _start_server(store, env_extra=env,
                                   args=("--drain-grace", "20"))
        try:
            client = ServiceClient(port=port)
            accepted = client.submit(dict(SWEEP, label="drainee"))
            run_id = accepted["run_id"]
            assert _wait_journal_op(store, run_id, "checkpoint")

            proc.send_signal(signal.SIGTERM)
            # while draining the service answers, but refuses new work
            deadline = time.monotonic() + 10.0
            health = None
            while time.monotonic() < deadline:
                try:
                    health = client.health()
                except OSError:
                    break  # already exited; the 503 assertions were raced out
                if health.get("status") == "draining":
                    break
                time.sleep(0.02)
            if health is not None and health.get("status") == "draining":
                assert health["http_status"] == 503
                probe = ServiceClient(port=port, retries=0)
                with pytest.raises(ServiceClientError) as err:
                    probe.submit(SUBMIT)
                assert err.value.status == 503
                assert "draining" in err.value.payload["error"]

            # exits cleanly within the grace, not via timeout or crash
            assert proc.wait(timeout=30) == 0
        finally:
            proc.kill()

        # the running job stopped at a checkpoint group as interrupted...
        offline = RunStore(store)
        status = offline.status(run_id)
        assert status["state"] == "interrupted"
        assert run_id in offline.scan_recoverable()
        # ... with a well-formed manifest that resumes bit-identically
        manifest_path = os.path.join(store, run_id, "manifest.jsonl")
        partial = load_manifest(manifest_path)
        assert 0 < len(partial) < SWEEP["replicas"]
        resumed = resume_sweep(manifest_path, processes=1)
        control = library_records(SWEEP)
        assert len(resumed) == SWEEP["replicas"]
        for record in resumed.records:
            assert record.interactions == control[record.index].interactions


# -- idempotent submits over the wire -----------------------------------------

class TestIdempotency:
    def test_same_key_returns_same_run(self, tmp_path):
        app = ServiceApp(str(tmp_path / "runs"), workers=1, sandbox=False)
        handle = app.start_background()
        try:
            client = ServiceClient(port=handle.port)
            first = client.submit(SUBMIT, idempotency_key="nightly-42")
            second = client.submit(SUBMIT, idempotency_key="nightly-42")
            assert second["run_id"] == first["run_id"]
            assert second["deduplicated"] is True
            third = client.submit(SUBMIT, idempotency_key="nightly-43")
            assert third["run_id"] != first["run_id"]
        finally:
            handle.stop()


# -- the retrying client against a scripted stub ------------------------------

class _Script:
    """Canned responses keyed by (method, path); records every request."""

    def __init__(self):
        self.responses = {}
        self.seen = []

    def on(self, method, path, *responses):
        self.responses[(method, path)] = list(responses)


class _StubHandler(BaseHTTPRequestHandler):
    script = None

    def _serve(self):
        length = int(self.headers.get("Content-Length", 0) or 0)
        body = self.rfile.read(length) if length else b""
        self.script.seen.append(
            (self.command, self.path, dict(self.headers), body)
        )
        path = self.path.split("?")[0]
        queue = self.script.responses.get((self.command, path))
        if not queue:
            status, headers, payload = 404, {}, {"error": "unscripted"}
        elif len(queue) > 1:
            status, headers, payload = queue.pop(0)
        else:
            status, headers, payload = queue[0]  # repeat the last response
        data = (
            payload if isinstance(payload, bytes)
            else json.dumps(payload).encode()
        )
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    do_GET = _serve
    do_POST = _serve

    def log_message(self, *args):  # quiet
        pass


@pytest.fixture
def stub():
    script = _Script()
    handler = type("Handler", (_StubHandler,), {"script": script})
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield script, server.server_address[1]
    server.shutdown()
    server.server_close()


class _FixedRng:
    def random(self):
        return 1.0  # makes jitter deterministic and visible


class TestClientRetryDiscipline:
    def _client(self, port, **kwargs):
        sleeps = []
        kwargs.setdefault("jitter", 0.0)
        kwargs.setdefault("backoff_base", 0.2)
        kwargs.setdefault("backoff_cap", 5.0)
        client = ServiceClient(
            port=port, sleep=sleeps.append, rng=_FixedRng(), **kwargs
        )
        return client, sleeps

    def test_retry_after_wins_over_backoff(self, stub):
        script, port = stub
        script.on(
            "POST", "/runs",
            (503, {"Retry-After": "0.37"}, {"error": "draining"}),
            (202, {}, {"run_id": "abcabcabcabc", "state": "queued"}),
        )
        client, sleeps = self._client(port)
        out = client.submit(SUBMIT, idempotency_key="pinned")
        assert out["run_id"] == "abcabcabcabc"
        assert sleeps == [0.37]
        submits = [s for s in script.seen if s[0] == "POST"]
        assert len(submits) == 2
        # the retry reused the same idempotency key: no duplicate run
        keys = {s[2].get("Idempotency-Key") for s in submits}
        assert keys == {"pinned"}

    def test_backoff_doubles_and_jitters(self, stub):
        script, port = stub
        script.on(
            "POST", "/runs",
            (429, {}, {"error": "queue full"}),
            (429, {}, {"error": "queue full"}),
            (429, {}, {"error": "queue full"}),
            (202, {}, {"run_id": "abcabcabcabc", "state": "queued"}),
        )
        client, sleeps = self._client(port, jitter=0.5)
        client.submit(SUBMIT)
        # base * 2^k, each inflated by jitter * rng() == 0.5
        assert sleeps == [
            pytest.approx(0.2 * 1.5),
            pytest.approx(0.4 * 1.5),
            pytest.approx(0.8 * 1.5),
        ]

    def test_backoff_is_capped(self, stub):
        script, port = stub
        script.on("POST", "/runs", (503, {}, {"error": "draining"}))
        client, sleeps = self._client(port, retries=6, backoff_cap=1.0)
        with pytest.raises(ServiceClientError) as err:
            client.submit(SUBMIT)
        assert err.value.status == 503
        assert len(sleeps) == 6
        assert max(sleeps) <= 1.0

    def test_validation_errors_do_not_retry(self, stub):
        script, port = stub
        script.on("POST", "/runs", (400, {}, {"error": "bad workload"}))
        client, sleeps = self._client(port)
        with pytest.raises(ServiceClientError) as err:
            client.submit(SUBMIT)
        assert err.value.status == 400
        assert sleeps == []
        assert len([s for s in script.seen if s[0] == "POST"]) == 1

    def test_connection_refused_retries_then_raises(self, tmp_path):
        # bind-and-close to find a port that refuses connections
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        sleeps = []
        client = ServiceClient(
            port=port, retries=2, jitter=0.0, sleep=sleeps.append,
        )
        with pytest.raises(ServiceClientError) as err:
            client.status("abcabcabcabc")
        assert err.value.status == 0
        assert len(sleeps) == 2

    def test_event_stream_resumes_from_cursor(self, stub):
        script, port = stub
        run = "abcabcabcabc"
        first = b"".join(
            json.dumps({"seq": k, "kind": "progress"}).encode() + b"\n"
            for k in (0, 1)
        )
        second = b"".join(
            json.dumps({"seq": k, "kind": "progress"}).encode() + b"\n"
            for k in (2, 3)
        )
        script.on("GET", "/runs/{}/events".format(run), (200, {}, first),
                  (200, {}, second))
        script.on("GET", "/runs/{}".format(run),
                  (200, {}, {"run_id": run, "state": "running"}),
                  (200, {}, {"run_id": run, "state": "done"}))
        client, _sleeps = self._client(port)
        events = list(client.events(run))
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        streams = [
            s[1] for s in script.seen if s[1].startswith("/runs/" + run + "/")
        ]
        # the reconnect asked for the cursor, not a restart from zero
        assert streams == [
            "/runs/{}/events?from=0".format(run),
            "/runs/{}/events?from=2".format(run),
        ]
