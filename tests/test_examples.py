"""Smoke tests: the example scripts' entry points run correctly."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_epidemic_demo(self, capsys):
        module = load_example("quickstart")
        module.epidemic_demo()
        out = capsys.readouterr().out
        assert "everyone informed" in out

    def test_leader_election_demo_runs_small(self, capsys):
        module = load_example("quickstart")
        from repro.protocols import run_leader_election
        import numpy as np

        ok, _, _ = run_leader_election(100, rng=np.random.default_rng(0))
        assert ok


class TestSensorVoting:
    def test_two_way_vote_scaled_down(self, capsys):
        module = load_example("sensor_voting")
        # exercise the module's helpers on a small instance
        from repro.protocols import run_majority
        import numpy as np

        out, _, _ = run_majority(300, 101, 100, rng=np.random.default_rng(1))
        assert out is True


class TestFrameworkTour:
    def test_program_builds_and_compiles(self):
        module = load_example("framework_tour")
        program = module.token_broadcast_program()
        from repro.lang import compile_program, precompile

        pre = precompile(program)
        assert pre.depth == 1
        compiled = compile_program(program)
        assert compiled.hierarchy.params.module % 12 == 0


class TestChemicalOscillator:
    def test_flask_and_short_run(self):
        module = load_example("chemical_oscillator")
        from repro.oscillator import make_oscillator_protocol

        protocol = make_oscillator_protocol()
        flask = module.make_flask(protocol.schema, 500)
        assert flask.n == 500

    def test_protocol_files_parse(self):
        from repro.lang import parse_program

        for name in ("leader_election", "majority"):
            path = os.path.join(EXAMPLES_DIR, "protocols", name + ".txt")
            with open(path) as handle:
                program = parse_program(handle.read())
            assert program.main_thread is not None
