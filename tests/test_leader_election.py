"""Tests for the w.h.p. LeaderElection protocol (Theorem 3.1)."""

import numpy as np
import pytest

from repro.core import Population, V
from repro.lang import IdealInterpreter, program_schema
from repro.protocols import (
    leader_election_program,
    run_leader_election,
)
from repro.protocols.leader_election import make_interpreter


class TestProgramShape:
    def test_variables(self):
        prog = leader_election_program()
        assert prog.outputs == ["L"]
        assert prog.variable("L").init is True
        assert prog.variable("F").init is True
        assert prog.variable("D").init is False

    def test_single_main_thread(self):
        prog = leader_election_program()
        assert len(prog.threads) == 1
        assert prog.loop_depth() == 1


class TestConvergence:
    @pytest.mark.parametrize("n", [50, 500, 5000])
    def test_elects_unique_leader(self, n):
        ok, iterations, rounds = run_leader_election(
            n, rng=np.random.default_rng(n)
        )
        assert ok

    def test_iterations_scale_logarithmically(self):
        iteration_counts = {}
        for n in (100, 10000):
            counts = []
            for seed in range(5):
                ok, iters, _ = run_leader_election(
                    n, rng=np.random.default_rng(seed)
                )
                assert ok
                counts.append(iters)
            iteration_counts[n] = np.median(counts)
        # 100x population growth should roughly double the iterations
        ratio = iteration_counts[10000] / iteration_counts[100]
        assert 1.2 < ratio < 4.0

    def test_rounds_are_polylog(self):
        _, _, rounds_small = run_leader_election(100, rng=np.random.default_rng(0))
        _, _, rounds_large = run_leader_election(10000, rng=np.random.default_rng(0))
        # O(log^2 n): factor (ln 10^4 / ln 10^2)^2 = 4, far below linear 100x
        assert rounds_large / rounds_small < 10


class TestMechanism:
    def test_leader_count_halves_in_expectation(self):
        interp = make_interpreter(4000, rng=np.random.default_rng(1))
        counts = [interp.population.count(V("L"))]
        for _ in range(5):
            interp.run_iteration()
            counts.append(interp.population.count(V("L")))
        # each good iteration should at least meaningfully shrink L
        for before, after in zip(counts, counts[1:]):
            if before > 16:
                assert after < before * 0.8

    def test_empty_leader_set_recovers(self):
        prog = leader_election_program()
        schema = program_schema(prog)
        pop = Population.uniform(
            schema, 200, {"L": False, "D": False, "F": True}
        )
        interp = IdealInterpreter(prog, pop, rng=np.random.default_rng(2))
        interp.run_iteration()
        # with L empty, the else branch restores L := on for everyone
        assert pop.count(V("L")) == 200
        interp.run(20, stop=lambda p: p.count(V("L")) == 1)
        assert pop.count(V("L")) == 1

    def test_leader_set_never_empty_after_iterations(self):
        interp = make_interpreter(300, rng=np.random.default_rng(3))
        for _ in range(12):
            interp.run_iteration()
            assert interp.population.count(V("L")) >= 1

    def test_unique_leader_is_stable(self):
        interp = make_interpreter(300, rng=np.random.default_rng(4))
        interp.run(25, stop=lambda p: p.count(V("L")) == 1)
        assert interp.population.count(V("L")) == 1
        for _ in range(3):
            interp.run_iteration()
            assert interp.population.count(V("L")) == 1
