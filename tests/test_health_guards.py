"""Engine health guards (`repro.engine.health`).

A HealthMonitor threaded through Engine.run must catch corrupted
transition tables (NaN probability rows, dropped/bit-flipped outcome
windows) with a structured SimulationHealthError naming the engine and
the interaction index — while leaving a clean run's trajectory
bit-identical to an unguarded one.
"""

import pickle

import numpy as np
import pytest

from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import (
    BatchCountEngine,
    CountEngine,
    HealthMonitor,
    SimulationHealthError,
    resolve_guards,
)
from repro.faults import corrupt_table


def make_epidemic(n=300):
    schema = StateSchema()
    schema.flag("I")
    protocol = single_thread(
        "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
    )
    population = Population.from_groups(
        schema, [({"I": True}, 1), ({"I": False}, n - 1)]
    )
    return protocol, population


def all_infected(pop):
    return pop.all_satisfy(V("I"))


class TestResolveGuards:
    def test_off(self):
        assert resolve_guards(None) is None
        assert resolve_guards(False) is None

    def test_on(self):
        assert isinstance(resolve_guards(True), HealthMonitor)

    def test_instance_passthrough(self):
        monitor = HealthMonitor()
        assert resolve_guards(monitor) is monitor

    def test_config_dict(self):
        monitor = resolve_guards({"conservation": False, "check_every": 8})
        assert monitor.conservation is False
        assert monitor.check_every == 8

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="guards"):
            resolve_guards("yes")

    def test_rejects_bad_check_every(self):
        with pytest.raises(ValueError, match="check_every"):
            HealthMonitor(check_every=0)


class TestCleanRunUnchanged:
    @pytest.mark.parametrize("engine_cls", [BatchCountEngine, CountEngine])
    def test_trajectory_bit_identical(self, engine_cls):
        protocol, population = make_epidemic()
        results = []
        for guards in (None, True):
            proto, pop = make_epidemic()
            eng = engine_cls(
                proto, pop, rng=np.random.default_rng(11), guards=guards
            )
            eng.run(stop=all_infected)
            results.append((eng.interactions, eng.rounds))
        assert results[0] == results[1]

    def test_repeated_runs_keep_expected_n(self):
        # attach() is idempotent: a second run() must not re-baseline
        protocol, population = make_epidemic()
        eng = BatchCountEngine(
            protocol, population, rng=np.random.default_rng(0), guards=True
        )
        eng.run(rounds=2.0)
        eng.run(rounds=2.0)
        assert eng.guards._expected_n == 300


class TestGuardsCatchCorruption:
    def _guarded_engine(self, mode):
        protocol, population = make_epidemic(n=400)
        eng = BatchCountEngine(
            protocol, population, rng=np.random.default_rng(0), guards=True
        )
        original = eng._ct
        bad = corrupt_table(original, mode)
        eng._ct = bad
        if eng.table is original:
            eng.table = bad
        return eng

    def test_nan_table_caught_at_attach(self):
        eng = self._guarded_engine("nan")
        with pytest.raises(SimulationHealthError) as excinfo:
            eng.run(stop=all_infected)
        err = excinfo.value
        assert err.check == "finite-probabilities"
        assert err.engine == eng.name
        assert err.interactions == 0
        assert err.engine in str(err)

    def test_dropped_outcomes_break_conservation(self):
        eng = self._guarded_engine("drop")
        with pytest.raises(SimulationHealthError) as excinfo:
            eng.run(stop=all_infected)
        err = excinfo.value
        assert err.check == "conservation"
        assert "population started with 400" in str(err)
        assert err.interactions > 0

    def test_unguarded_engine_does_not_notice(self):
        # the control: without guards the same corruption passes silently
        protocol, population = make_epidemic(n=400)
        eng = BatchCountEngine(
            protocol, population, rng=np.random.default_rng(0)
        )
        original = eng._ct
        bad = corrupt_table(original, "drop")
        eng._ct = bad
        if eng.table is original:
            eng.table = bad
        eng.run(rounds=5.0)  # no error raised; agents silently vanish

    def test_error_pickles_with_structure(self):
        err = SimulationHealthError(
            "conservation", "batch", 123, [4, 5], "lost agents"
        )
        back = pickle.loads(pickle.dumps(err))
        assert back.check == "conservation"
        assert back.engine == "batch"
        assert back.interactions == 123
        assert back.codes == [4, 5]
        assert "lost agents" in str(back)


class TestIndividualChecks:
    def test_headroom(self):
        monitor = HealthMonitor()
        protocol, population = make_epidemic()
        eng = BatchCountEngine(protocol, population, guards=monitor)
        monitor.attach(eng)
        monitor.check_batch(eng, 10)  # fine
        with pytest.raises(SimulationHealthError, match="int64-headroom"):
            monitor.check_batch(eng, 2 ** 62 + 1)

    def test_nan_weights(self):
        monitor = HealthMonitor()
        protocol, population = make_epidemic()
        eng = BatchCountEngine(protocol, population, guards=monitor)
        monitor.attach(eng)
        weights = np.ones((2, 2))
        monitor.check_weights(eng, weights)  # fine
        weights[0, 1] = np.nan
        with pytest.raises(SimulationHealthError, match="finite"):
            monitor.check_weights(eng, weights)

    def test_stall_watchdog(self):
        protocol, population = make_epidemic(n=50)
        monitor = HealthMonitor(stall_rounds=1.0, check_every=1)
        eng = CountEngine(
            protocol, population, rng=np.random.default_rng(0), guards=monitor
        )
        monitor.attach(eng)
        counts, _ = monitor._counts_vector(eng)
        if counts is None:
            pytest.skip("engine exposes no count vector")
        monitor._check_counts(eng)  # baseline snapshot
        # freeze the counts while claiming lots of scheduler progress
        eng.interactions += 10 * population.n
        with pytest.raises(SimulationHealthError, match="stall"):
            monitor._check_counts(eng)

    def test_negative_counts(self):
        protocol, population = make_epidemic(n=40)
        monitor = HealthMonitor(conservation=False)
        eng = BatchCountEngine(
            protocol, population, rng=np.random.default_rng(0), guards=monitor
        )
        monitor.attach(eng)
        counts, _ = monitor._counts_vector(eng)
        counts[0] = -1
        with pytest.raises(SimulationHealthError, match="nonnegative"):
            monitor._check_counts(eng)
