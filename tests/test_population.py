"""Tests for population configurations."""

import numpy as np
import pytest

from repro.core import Population, StateSchema, V


@pytest.fixture
def schema():
    s = StateSchema()
    s.flags("A", "B")
    return s


@pytest.fixture
def population(schema):
    return Population.from_groups(
        schema, [({"A": True}, 30), ({"B": True}, 20), ({}, 50)]
    )


class TestConstruction:
    def test_total(self, population):
        assert population.n == 100

    def test_uniform(self, schema):
        pop = Population.uniform(schema, 10, {"A": True})
        assert pop.count(V("A")) == 10

    def test_negative_count_rejected(self, schema):
        pop = Population(schema)
        with pytest.raises(ValueError):
            pop.add(0, -1)

    def test_zero_count_groups_skipped(self, schema):
        pop = Population.from_groups(schema, [({}, 0)])
        assert pop.n == 0

    def test_copy_independent(self, population):
        clone = population.copy()
        clone.add(0, 5)
        assert clone.n == population.n + 5


class TestCounting:
    def test_count_formula(self, population):
        assert population.count(V("A")) == 30
        assert population.count(~V("A") & ~V("B")) == 50

    def test_fraction(self, population):
        assert population.fraction(V("B")) == pytest.approx(0.2)

    def test_exists(self, population):
        assert population.exists(V("A"))
        assert not population.exists(V("A") & V("B"))

    def test_all_satisfy(self, population, schema):
        assert not population.all_satisfy(V("A"))
        uniform = Population.uniform(schema, 5, {"A": True})
        assert uniform.all_satisfy(V("A"))

    def test_support_size(self, population):
        assert population.support_size == 3


class TestMutation:
    def test_move(self, population, schema):
        source = schema.pack({"A": True})
        target = schema.pack({"B": True})
        population.move(source, target, 10)
        assert population.count(V("A")) == 20
        assert population.count(V("B")) == 30

    def test_move_too_many_rejected(self, population, schema):
        with pytest.raises(ValueError):
            population.move(schema.pack({"A": True}), 0, 31)

    def test_remove_clears_empty_entries(self, schema):
        pop = Population.from_groups(schema, [({"A": True}, 1)])
        pop.remove(schema.pack({"A": True}), 1)
        assert pop.support_size == 0

    def test_assign_all(self, population):
        population.assign_all("A", V("B"))
        assert population.count(V("A")) == 20
        assert population.count(V("A") & V("B")) == 20

    def test_assign_where(self, population):
        moved = population.assign_where(V("A"), {"B": True})
        assert moved == 30
        assert population.count(V("A") & V("B")) == 30

    def test_assign_where_idempotent(self, population):
        population.assign_where(V("A"), {"B": True})
        assert population.assign_where(V("A"), {"B": True}) == 0


class TestConversions:
    def test_agent_array_roundtrip(self, population, schema):
        agents = population.to_agent_array()
        rebuilt = Population.from_agent_array(schema, agents)
        assert rebuilt == population

    def test_agent_array_shuffled(self, population):
        rng = np.random.default_rng(0)
        agents = population.to_agent_array(rng)
        assert len(agents) == 100

    def test_empty_agent_array(self, schema):
        pop = Population(schema)
        assert len(pop.to_agent_array()) == 0

    def test_summary_mentions_counts(self, population):
        text = population.summary()
        assert "n=100" in text
