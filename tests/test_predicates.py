"""Tests for the semi-linear predicate algebra and the two blackboxes."""

import numpy as np
import pytest

from repro.core import Population, StateSchema, V
from repro.engine import CountEngine
from repro.predicates import (
    BooleanCombination,
    Remainder,
    SlowBlackbox,
    Threshold,
    at_least,
    majority_predicate,
    parity,
)


class TestAlgebra:
    def test_threshold_evaluation(self):
        pred = Threshold({"A": 2, "B": -1}, 3)
        assert pred.evaluate({"A": 3, "B": 2})  # 6 - 2 = 4 >= 3
        assert not pred.evaluate({"A": 1, "B": 0})  # 2 < 3

    def test_threshold_missing_inputs_are_zero(self):
        assert not at_least("A", 1).evaluate({})

    def test_remainder_evaluation(self):
        pred = Remainder({"A": 1}, 2, 5)
        assert pred.evaluate({"A": 7})
        assert not pred.evaluate({"A": 8})

    def test_remainder_normalizes(self):
        pred = Remainder({"A": 1}, 7, 5)
        assert pred.remainder == 2

    def test_remainder_modulus_validation(self):
        with pytest.raises(ValueError):
            Remainder({"A": 1}, 0, 1)

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            Threshold({}, 0)

    def test_boolean_combinations(self):
        pred = at_least("A", 3) & parity("A")
        assert pred.evaluate({"A": 4})
        assert not pred.evaluate({"A": 3})
        assert not pred.evaluate({"A": 2})

    def test_negation(self):
        pred = ~at_least("A", 3)
        assert pred.evaluate({"A": 2})

    def test_or(self):
        pred = at_least("A", 5) | at_least("B", 5)
        assert pred.evaluate({"B": 7})

    def test_atoms_collected(self):
        pred = (at_least("A", 1) & parity("B")) | at_least("C", 2)
        assert len(pred.atoms()) == 3

    def test_inputs_deduplicated(self):
        pred = at_least("A", 1) & parity("A")
        assert pred.inputs() == ["A"]

    def test_describe(self):
        assert ">=" in at_least("A", 3).describe()
        assert "mod" in parity("A").describe()

    def test_majority_predicate(self):
        pred = majority_predicate()
        assert pred.evaluate({"A": 5, "B": 4})
        assert not pred.evaluate({"A": 4, "B": 4})  # strict comparison

    def test_bad_boolean_op(self):
        with pytest.raises(ValueError):
            BooleanCombination("xor", [at_least("A", 1), at_least("B", 1)])


class TestSlowBlackbox:
    def _settle(self, predicate, groups, seed=0, max_rounds=8000):
        box = SlowBlackbox(predicate)
        pop = box.populate(groups)
        engine = CountEngine(box.protocol(), pop, rng=np.random.default_rng(seed))
        engine.run(
            rounds=max_rounds,
            stop=lambda p: box.stabilized(p) and box.unanimous_output(p) is not None,
        )
        return box, pop, engine

    @pytest.mark.parametrize(
        "groups,expected",
        [
            ([("A", 20), ("B", 15), (None, 15)], True),
            ([("A", 15), ("B", 20), (None, 15)], False),
            ([("A", 26), ("B", 25), (None, 0)], True),
        ],
    )
    def test_majority(self, groups, expected):
        box, pop, _ = self._settle(majority_predicate(), groups)
        assert box.unanimous_output(pop) is expected

    @pytest.mark.parametrize("count,expected", [(7, True), (5, True), (4, False)])
    def test_absolute_threshold(self, count, expected):
        box, pop, _ = self._settle(at_least("A", 5), [("A", count), (None, 60 - count)])
        assert box.unanimous_output(pop) is expected

    @pytest.mark.parametrize("count,expected", [(8, True), (9, False), (0, True)])
    def test_parity(self, count, expected):
        box, pop, _ = self._settle(parity("A"), [("A", count), (None, 60 - count)])
        assert box.unanimous_output(pop) is expected

    def test_conjunction(self):
        pred = at_least("A", 3) & parity("A")
        box, pop, _ = self._settle(pred, [("A", 6), (None, 54)])
        assert box.unanimous_output(pop) is True

    def test_stabilized_detection(self):
        box, pop, _ = self._settle(majority_predicate(), [("A", 12), ("B", 9), (None, 9)])
        assert box.stabilized(pop)

    def test_empty_population_rejected(self):
        box = SlowBlackbox(majority_predicate())
        with pytest.raises(ValueError):
            box.populate([("A", 0)])

    def test_constant_planted_once(self):
        box = SlowBlackbox(at_least("A", 3))
        pop = box.populate([("A", 5), (None, 5)])
        # total token sum = 5*1 - 3 = 2
        total = 0
        for code, count in pop.counts.items():
            total += pop.schema.value_of(code, box.atom_protocols[0].value_field) * count
        assert total == 2

    def test_opinion_formula_reads_locally(self):
        box = SlowBlackbox(parity("A"))
        pop = box.populate([("A", 2), (None, 3)])
        formula = box.opinion_formula()
        assert pop.count(formula) >= 0  # evaluates without error

    def test_threshold_token_mass_decreases(self):
        box = SlowBlackbox(majority_predicate())
        pop = box.populate([("A", 30), ("B", 28), (None, 2)])
        ap = box.atom_protocols[0]

        def mass(p):
            return sum(
                abs(p.schema.value_of(code, ap.value_field)) * count
                for code, count in p.counts.items()
            )

        before = mass(pop)
        CountEngine(box.protocol(), pop, rng=np.random.default_rng(3)).run(rounds=50)
        assert mass(pop) <= before
