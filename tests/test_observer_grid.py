"""Observer-grid equivalence: count vs batch engines on the E3 oscillator.

Both sequential-scheduler engines compute the observation grid the same
way (``step = round(observe_every * n)`` interactions), so a ``Trace``
recorded under the same ``observe_every`` must land on *identical*
parallel-time grids regardless of how the engine advances between grid
points (per-event vs multinomial batch jumps) — and the recorded series
must agree in distribution (two-sample KS over pooled seeds), since the
jump engine simulates the same scheduler.
"""

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.core import Population
from repro.engine import Trace
from repro.oscillator import make_oscillator_protocol, species, weak_value
from repro.simulate import make_engine

N = 600
ROUNDS = 30.0
KS_ALPHA = 0.001


def oscillator_population(schema, n):
    third = (n - 3) // 3
    return Population.from_groups(
        schema,
        [
            ({"osc": weak_value(0)}, third + (n - 3) - 3 * third),
            ({"osc": weak_value(1)}, third),
            ({"osc": weak_value(2)}, third),
            ({"osc": weak_value(0), "X": True}, 3),
        ],
    )


def record_trace(engine, seed, observe_every=1.0):
    protocol = make_oscillator_protocol()
    population = oscillator_population(protocol.schema, N)
    trace = Trace({"A1": species(0), "A2": species(1), "A3": species(2)})
    eng = make_engine(
        protocol, population, engine=engine, rng=np.random.default_rng(seed)
    )
    eng.run(rounds=ROUNDS, observer=trace, observe_every=observe_every)
    return trace


class TestObserverGridEquivalence:
    @pytest.mark.parametrize("observe_every", [1.0, 2.5])
    def test_identical_time_grids(self, observe_every):
        count = record_trace("count", seed=0, observe_every=observe_every)
        batch = record_trace("batch", seed=1, observe_every=observe_every)
        assert count.times.tolist() == batch.times.tolist()
        # the grid is uniform with the requested spacing (in rounds)
        spacing = np.diff(count.times)
        assert np.allclose(spacing, observe_every)

    def test_grid_independent_of_seed(self):
        a = record_trace("batch", seed=3)
        b = record_trace("batch", seed=4)
        assert a.times.tolist() == b.times.tolist()

    @pytest.mark.slow
    def test_series_agree_in_distribution(self):
        # pool the A1/A2/A3 samples over several independent seeds per
        # engine; the jump engine simulates the same sequential scheduler,
        # so the pooled series must be KS-indistinguishable
        seeds = range(5)
        pooled = {"count": [], "batch": []}
        for engine in pooled:
            for seed in seeds:
                trace = record_trace(engine, seed=100 + seed)
                for name in ("A1", "A2", "A3"):
                    pooled[engine].append(trace.series(name))
        count = np.concatenate(pooled["count"])
        batch = np.concatenate(pooled["batch"])
        assert ks_2samp(count, batch).pvalue > KS_ALPHA
