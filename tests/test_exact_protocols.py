"""Tests for the always-correct protocols (Sections 6.1, 6.2)."""

import numpy as np
import pytest

from repro.core import Population, V
from repro.lang import IdealInterpreter, program_schema
from repro.protocols import (
    leader_election_exact_program,
    run_leader_election_exact,
    run_majority_exact,
    unique_leader_is_r,
)
from repro.protocols.leader_election_exact import exact_population
from repro.protocols.majority_exact import majority_exact_program, majority_exact_population


class TestLeaderElectionExact:
    def test_program_has_three_threads(self):
        prog = leader_election_exact_program()
        names = [t.name for t in prog.threads]
        assert names == ["Main", "FilteredCoin", "ReduceSets"]

    @pytest.mark.parametrize("n", [100, 1000])
    def test_elects_unique_leader(self, n):
        ok, iterations, rounds, n_r = run_leader_election_exact(
            n, rng=np.random.default_rng(n)
        )
        assert ok

    def test_r_set_never_empty(self):
        _, pop = exact_population(300)
        interp = IdealInterpreter(
            leader_election_exact_program(), pop, rng=np.random.default_rng(1)
        )
        for _ in range(10):
            interp.run_iteration()
            assert pop.count(V("R")) >= 1

    def test_l_set_never_empty_after_first_iteration(self):
        _, pop = exact_population(300)
        interp = IdealInterpreter(
            leader_election_exact_program(), pop, rng=np.random.default_rng(2)
        )
        interp.run_iteration()
        for _ in range(10):
            interp.run_iteration()
            assert pop.count(V("L")) >= 1

    def test_filtered_coin_balanced(self):
        """Theorem 6.2's synthetic-coin bounds: #F settles to a constant
        fraction of n (15n/64 <= #F <= 5n/8 in the paper's analysis)."""
        _, pop = exact_population(2000)
        interp = IdealInterpreter(
            leader_election_exact_program(), pop, rng=np.random.default_rng(3)
        )
        fractions = []
        for _ in range(8):
            interp.run_iteration()
            fractions.append(pop.fraction(V("F")))
        settled = fractions[2:]
        assert all(0.1 < f < 0.75 for f in settled)

    def test_eventual_certainty_witness(self):
        """After long enough, L = R = one agent (the certain fixpoint)."""
        _, pop = exact_population(150)
        interp = IdealInterpreter(
            leader_election_exact_program(), pop, rng=np.random.default_rng(4)
        )
        interp.run(60, stop=unique_leader_is_r)
        assert pop.count(V("L")) == 1

    def test_convergence_rounds_polylog(self):
        results = {}
        for n in (100, 3000):
            ok, _, rounds, _ = run_leader_election_exact(
                n, rng=np.random.default_rng(7)
            )
            assert ok
            results[n] = rounds
        assert results[3000] / results[100] < 12


class TestMajorityExact:
    def test_program_has_slow_thread(self):
        prog = majority_exact_program()
        assert [t.name for t in prog.threads] == ["Main", "SlowCancel"]

    @pytest.mark.parametrize(
        "n,a,b",
        [(400, 140, 130), (400, 130, 140), (400, 134, 133), (1500, 501, 500)],
    )
    def test_correct_output(self, n, a, b):
        out, _, _ = run_majority_exact(
            n, a, b, max_iterations=10, rng=np.random.default_rng(a * 7 + b)
        )
        assert out is (a > b)

    def test_slow_thread_eventually_destroys_minority_inputs(self):
        _, pop = majority_exact_population(300, 110, 100)
        interp = IdealInterpreter(
            majority_exact_program(), pop, rng=np.random.default_rng(5)
        )
        interp.run(10, stop=lambda p: not p.exists(V("B")))
        assert not pop.exists(V("B"))
        assert pop.count(V("A")) == 10  # the surplus survives exactly

    def test_output_permanent_after_slow_convergence(self):
        _, pop = majority_exact_population(300, 110, 100)
        interp = IdealInterpreter(
            majority_exact_program(), pop, rng=np.random.default_rng(6)
        )
        interp.run(12, stop=lambda p: not p.exists(V("B")))
        interp.run(2)
        first = pop.count(V("YA"))
        interp.run(2)
        assert pop.count(V("YA")) == first == pop.n
