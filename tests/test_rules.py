"""Tests for rules, branches and dynamic rules."""

import pytest

from repro.core import DynamicRule, Rule, StateSchema, V, coin_rule
from repro.core.rules import Branch


@pytest.fixture
def schema():
    s = StateSchema()
    s.flags("A", "B", "K")
    return s


def outcomes_dict(rule, schema, ca, cb):
    return {(a, b): p for a, b, p in rule.outcomes(schema, ca, cb)}


class TestRuleMatching:
    def test_any_guard_matches(self, schema):
        rule = Rule(None, None, {"A": True})
        assert rule.outcomes(schema, 0, 0)

    def test_guard_filters_initiator(self, schema):
        rule = Rule(V("A"), None, {"B": True})
        assert rule.outcomes(schema, 0, 0) == []
        code_a = schema.pack({"A": True})
        assert rule.outcomes(schema, code_a, 0)

    def test_guard_filters_responder(self, schema):
        rule = Rule(None, V("A"), {"B": True})
        assert rule.outcomes(schema, 0, 0) == []

    def test_callable_guard(self, schema):
        rule = Rule(lambda s: s["A"], None, {"B": True})
        assert rule.outcomes(schema, schema.pack({"A": True}), 0)
        assert rule.outcomes(schema, 0, 0) == []

    def test_formula_update_rhs(self, schema):
        rule = Rule(V("A"), None, V("B") & ~V("A"))
        code_a = schema.pack({"A": True})
        [(new_a, _, p)] = rule.outcomes(schema, code_a, 0)
        assert schema.decode(new_a) == {"A": False, "B": True, "K": False}
        assert p == 1.0


class TestRuleEffects:
    def test_updates_both_agents(self, schema):
        rule = Rule(V("A"), V("B"), {"A": False}, {"B": False})
        ca, cb = schema.pack({"A": True}), schema.pack({"B": True})
        [(na, nb, _)] = rule.outcomes(schema, ca, cb)
        assert na == 0 and nb == 0

    def test_effect_callable(self, schema):
        def swap(a, b):
            a["A"], b["A"] = b["A"], a["A"]

        rule = Rule(None, None, effect=swap)
        ca = schema.pack({"A": True})
        [(na, nb, _)] = rule.outcomes(schema, ca, 0)
        assert na == 0 and nb == ca

    def test_branches_probabilities(self, schema):
        rule = coin_rule(None, None, [(0.5, {"A": True}, None), (0.5, {"B": True}, None)])
        result = outcomes_dict(rule, schema, 0, 0)
        assert len(result) == 2
        assert abs(sum(result.values()) - 1.0) < 1e-12

    def test_branches_partial_probability(self, schema):
        rule = Rule(None, None, branches=[Branch(0.25, {"A": True})])
        result = rule.outcomes(schema, 0, 0)
        assert len(result) == 1
        assert result[0][2] == 0.25

    def test_branch_probability_above_one_rejected(self, schema):
        with pytest.raises(ValueError):
            Rule(None, None, branches=[Branch(0.7, {}), Branch(0.7, {})])

    def test_branches_exclusive_with_updates(self):
        with pytest.raises(ValueError):
            Rule(None, None, {"A": True}, branches=[Branch(1.0, {})])

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            Rule(None, None, {"A": True}, weight=0)


class TestGuarded:
    def test_adds_conjunct(self, schema):
        rule = Rule(V("A"), None, {"B": True})
        strict = rule.guarded(V("K"), V("K"))
        code = schema.pack({"A": True})
        assert strict.outcomes(schema, code, 0) == []
        armed = schema.pack({"A": True, "K": True})
        responder = schema.pack({"K": True})
        assert strict.outcomes(schema, armed, responder)

    def test_preserves_branches(self, schema):
        rule = coin_rule(None, None, [(0.5, {"A": True}, None)])
        strict = rule.guarded(V("K"), None)
        armed = schema.pack({"K": True})
        assert strict.outcomes(schema, armed, 0)[0][2] == 0.5

    def test_guard_with_callable_base(self, schema):
        rule = Rule(lambda s: s["A"], None, {"B": True})
        strict = rule.guarded(V("K"), None)
        code = schema.pack({"A": True, "K": True})
        assert strict.outcomes(schema, code, 0)
        assert strict.outcomes(schema, schema.pack({"A": True}), 0) == []

    def test_describe_mentions_parts(self, schema):
        rule = Rule(V("A"), V("B"), {"A": False}, name="cancel")
        text = rule.describe()
        assert "A" in text and "B" in text


class TestDynamicRule:
    def test_state_dependent_outcome(self, schema):
        def advance(a, b):
            if a["A"]:
                return [({"A": False}, {"A": True}, 1.0)]
            return []

        rule = DynamicRule(None, None, advance)
        ca = schema.pack({"A": True})
        [(na, nb, p)] = rule.outcomes(schema, ca, 0)
        assert na == 0 and nb == ca and p == 1.0
        assert rule.outcomes(schema, 0, 0) == []

    def test_probabilistic_outcomes(self, schema):
        rule = DynamicRule(
            None, None, lambda a, b: [({"A": True}, {}, 0.5), ({"B": True}, {}, 0.5)]
        )
        assert len(rule.outcomes(schema, 0, 0)) == 2

    def test_probability_overflow_rejected(self, schema):
        rule = DynamicRule(None, None, lambda a, b: [({}, {}, 0.8), ({}, {}, 0.8)])
        with pytest.raises(ValueError):
            rule.outcomes(schema, 0, 0)

    def test_guard_respected(self, schema):
        rule = DynamicRule(V("A"), None, lambda a, b: [({"B": True}, {}, 1.0)])
        assert rule.outcomes(schema, 0, 0) == []

    def test_guarded_clone(self, schema):
        rule = DynamicRule(None, None, lambda a, b: [({"B": True}, {}, 1.0)])
        strict = rule.guarded(V("K"), V("K"))
        assert strict.outcomes(schema, 0, 0) == []
        armed = schema.pack({"K": True})
        assert strict.outcomes(schema, armed, armed)
