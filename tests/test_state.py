"""Tests for state schemas, packing and state views."""

import pytest

from repro.core import Field, StateSchema


@pytest.fixture
def schema():
    s = StateSchema()
    s.flag("L")
    s.enum("phase", 5)
    s.enum("species", 3, values=("A1", "A2", "A3"))
    return s


class TestField:
    def test_boolean_values(self):
        f = Field("L", 2, boolean=True)
        assert f.values == (False, True)

    def test_enum_default_values(self):
        f = Field("phase", 4)
        assert f.values == (0, 1, 2, 3)

    def test_named_values(self):
        f = Field("sp", 2, values=("x", "y"))
        assert f.index_of("y") == 1

    def test_unknown_value_rejected(self):
        f = Field("sp", 2, values=("x", "y"))
        with pytest.raises(ValueError):
            f.index_of("z")

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError):
            Field("sp", 2, values=("x", "x"))

    def test_size_value_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Field("sp", 3, values=("x", "y"))

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Field("sp", 0)


class TestSchema:
    def test_num_states(self, schema):
        assert schema.num_states == 2 * 5 * 3

    def test_duplicate_field_rejected(self, schema):
        with pytest.raises(ValueError):
            schema.flag("L")

    def test_pack_defaults(self, schema):
        code = schema.pack({})
        assert schema.decode(code) == {"L": False, "phase": 0, "species": "A1"}

    def test_pack_unpack_roundtrip(self, schema):
        assignment = {"L": True, "phase": 3, "species": "A2"}
        code = schema.pack(assignment)
        assert schema.decode(code) == assignment

    def test_pack_unknown_field_rejected(self, schema):
        with pytest.raises(ValueError):
            schema.pack({"nope": True})

    def test_value_of(self, schema):
        code = schema.pack({"phase": 4, "species": "A3"})
        assert schema.value_of(code, "phase") == 4
        assert schema.value_of(code, "species") == "A3"
        assert schema.value_of(code, "L") is False

    def test_with_values(self, schema):
        code = schema.pack({"L": True, "phase": 1})
        new_code = schema.with_values(code, {"phase": 2})
        assert schema.value_of(new_code, "phase") == 2
        assert schema.value_of(new_code, "L") is True

    def test_with_values_unknown_field(self, schema):
        with pytest.raises(ValueError):
            schema.with_values(0, {"nope": 1})

    def test_all_codes_distinct(self, schema):
        decodes = {tuple(sorted(schema.decode(c).items())) for c in schema.all_codes()}
        assert len(decodes) == schema.num_states

    def test_frozen_schema_rejects_fields(self, schema):
        schema.freeze()
        with pytest.raises(RuntimeError):
            schema.flag("new")

    def test_field_lookup_error_lists_fields(self, schema):
        with pytest.raises(KeyError, match="phase"):
            schema.field("missing")


class TestStateView:
    def test_attribute_access(self, schema):
        state = schema.unpack(schema.pack({"L": True, "phase": 2}))
        assert state.L is True
        assert state.phase == 2

    def test_item_access_and_mutation(self, schema):
        state = schema.unpack(0)
        state["phase"] = 4
        assert state["phase"] == 4
        assert schema.value_of(state.code, "phase") == 4

    def test_attribute_mutation(self, schema):
        state = schema.unpack(0)
        state.L = True
        assert state.code == schema.pack({"L": True})

    def test_invalid_value_rejected(self, schema):
        state = schema.unpack(0)
        with pytest.raises(ValueError):
            state["phase"] = 99

    def test_unknown_field_rejected(self, schema):
        state = schema.unpack(0)
        with pytest.raises(KeyError):
            state["nope"]

    def test_copy_is_independent(self, schema):
        state = schema.unpack(0)
        clone = state.copy()
        clone.L = True
        assert state.L is False

    def test_update(self, schema):
        state = schema.unpack(0)
        state.update({"L": True, "species": "A3"})
        assert state.L and state.species == "A3"

    def test_equality(self, schema):
        a = schema.unpack(schema.pack({"phase": 1}))
        b = schema.unpack(schema.pack({"phase": 1}))
        assert a == b

    def test_code_roundtrip(self, schema):
        for code in (0, 7, schema.num_states - 1):
            assert schema.unpack(code).code == code
