"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_leader_election_defaults(self):
        args = build_parser().parse_args(["leader-election"])
        assert args.n == 10000

    def test_seed_per_subcommand(self):
        args = build_parser().parse_args(["majority", "--seed", "7"])
        assert args.seed == 7

    def test_exact_flag(self):
        args = build_parser().parse_args(["majority", "--exact"])
        assert args.exact

    def test_engine_flag_on_every_subcommand(self):
        parser = build_parser()
        for argv in (
            ["leader-election", "--engine", "batch"],
            ["majority", "--engine", "count"],
            ["plurality", "--engine", "array"],
            ["predicate", "--engine", "matching"],
            ["oscillator", "--engine", "batch"],
            ["run-program", "prog.txt", "--engine", "batch"],
        ):
            assert parser.parse_args(argv).engine == argv[-1]

    def test_engine_defaults(self):
        parser = build_parser()
        assert parser.parse_args(["majority"]).engine == "auto"
        assert parser.parse_args(["oscillator"]).engine == "auto"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["majority", "--engine", "quantum"])


class TestCommands:
    def test_leader_election(self, capsys):
        assert main(["leader-election", "--n", "500", "--seed", "1"]) == 0
        assert "unique leader: True" in capsys.readouterr().out

    def test_majority(self, capsys):
        assert main(["majority", "--n", "300", "--a", "101", "--b", "100", "--seed", "2"]) == 0
        assert "majority says A" in capsys.readouterr().out

    def test_majority_b_wins(self, capsys):
        assert main(["majority", "--n", "300", "--a", "100", "--b", "101", "--seed", "3"]) == 0
        assert "majority says B" in capsys.readouterr().out

    def test_plurality(self, capsys):
        code = main(["plurality", "--counts", "40,25,25", "--seed", "4"])
        assert code == 0
        assert "winner: 0" in capsys.readouterr().out

    def test_predicate(self, capsys):
        code = main(
            ["predicate", "--kind", "at-least", "--count", "7",
             "--threshold", "5", "--n", "120", "--seed", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "protocol says True, truth True" in out

    def test_run_program(self, tmp_path, capsys):
        source = (
            "def protocol Broadcast\n"
            "var T <- on as input, FLAG <- off as output:\n"
            "thread Main uses FLAG, reads T:\n"
            "  repeat:\n"
            "    if exists (T):\n"
            "      FLAG := on\n"
        )
        path = tmp_path / "prog.txt"
        path.write_text(source)
        assert main(["run-program", str(path), "--n", "50", "--iterations", "1", "--seed", "6"]) == 0
        out = capsys.readouterr().out
        assert "#FLAG = 50" in out

    def test_majority_default_counts_scale_with_n(self, capsys):
        # the CI smoke invocation: counts derive from --n when not given
        assert main(["majority", "--n", "2000", "--seed", "8", "--engine", "auto"]) == 0
        assert "majority says A" in capsys.readouterr().out

    def test_leader_election_batch_engine(self, capsys):
        assert main(
            ["leader-election", "--n", "500", "--seed", "1", "--engine", "batch"]
        ) == 0
        assert "unique leader: True" in capsys.readouterr().out

    def test_majority_array_engine(self, capsys):
        assert main(
            ["majority", "--n", "300", "--a", "101", "--b", "100",
             "--seed", "2", "--engine", "array"]
        ) == 0
        assert "majority says A" in capsys.readouterr().out

    def test_predicate_expr(self, capsys):
        code = main(
            ["predicate", "--expr", "A >= 3 and A % 2 == 0",
             "--count", "6", "--n", "90", "--seed", "7"]
        )
        assert code == 0
        assert "truth True" in capsys.readouterr().out
