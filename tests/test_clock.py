"""Tests for the base phase clock C_o (Theorem 5.2)."""

import numpy as np
import pytest

from repro.core import Population
from repro.engine import MatchingEngine
from repro.clocks import (
    ClockParams,
    expected_species,
    extract_ticks,
    majority_phase,
    make_clock_protocol,
    phase_histogram,
    phase_of,
    phase_spread,
    phases_adjacent,
)
from repro.oscillator import strong_value, weak_value


def clock_population(schema, n, n_x=3):
    c1 = int(0.8 * (n - n_x))
    c2 = int(0.17 * (n - n_x))
    c3 = (n - n_x) - c1 - c2
    return Population.from_groups(
        schema,
        [
            ({"osc": strong_value(0), "clk": 0}, c1),
            ({"osc": weak_value(1), "clk": 0}, c2),
            ({"osc": weak_value(2), "clk": 0}, c3),
            ({"osc": weak_value(0), "X": True, "clk": 0}, n_x),
        ],
    )


class TestParams:
    def test_module_must_be_multiple_of_12(self):
        with pytest.raises(ValueError):
            ClockParams(module=10)

    def test_k_minimum(self):
        with pytest.raises(ValueError):
            ClockParams(k=1)

    def test_ring_size(self):
        assert ClockParams(module=12, k=6).ring_size == 72

    def test_expected_species_cycles(self):
        assert [expected_species(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_phase_of(self):
        params = ClockParams(module=12, k=6)
        assert phase_of(0, params) == 0
        assert phase_of(6, params) == 1
        assert phase_of(71, params) == 11


class TestHelpers:
    @pytest.fixture(scope="class")
    def setup(self):
        params = ClockParams()
        proto = make_clock_protocol(params=params)
        return params, proto

    def test_phase_histogram(self, setup):
        params, proto = setup
        pop = Population.from_groups(
            proto.schema,
            [({"clk": 0}, 10), ({"clk": params.k}, 5)],
        )
        assert phase_histogram(pop, params) == {0: 10, 1: 5}

    def test_majority_phase(self, setup):
        params, proto = setup
        pop = Population.from_groups(
            proto.schema, [({"clk": 0}, 10), ({"clk": params.k}, 5)]
        )
        phase, frac = majority_phase(pop, params)
        assert phase == 0 and frac == pytest.approx(10 / 15)

    def test_phases_adjacent_true(self, setup):
        params, proto = setup
        pop = Population.from_groups(
            proto.schema, [({"clk": 0}, 10), ({"clk": params.k}, 5)]
        )
        assert phases_adjacent(pop, params)

    def test_phases_adjacent_wraparound(self, setup):
        params, proto = setup
        pop = Population.from_groups(
            proto.schema,
            [({"clk": 0}, 10), ({"clk": (params.module - 1) * params.k}, 5)],
        )
        assert phases_adjacent(pop, params)

    def test_phases_adjacent_false(self, setup):
        params, proto = setup
        pop = Population.from_groups(
            proto.schema, [({"clk": 0}, 10), ({"clk": 3 * params.k}, 5)]
        )
        assert not phases_adjacent(pop, params)

    def test_extract_ticks_synthetic(self):
        times = [0, 1, 2, 3, 4, 5]
        phases = [0, 0, 1, 1, 2, 2]
        fracs = [0.99, 0.5, 0.99, 0.6, 0.99, 0.99]
        record = extract_ticks(times, phases, fracs, quorum=0.9)
        assert record.phases == [0, 1, 2]
        assert record.cyclic_ok(12)
        assert list(record.intervals) == [2.0, 2.0]


class TestOperation:
    """One medium stochastic run shared by the behavioural assertions."""

    @pytest.fixture(scope="class")
    def run(self):
        params = ClockParams()
        proto = make_clock_protocol(params=params)
        pop = clock_population(proto.schema, 3000)
        times, phases, fracs, adjacent = [], [], [], []

        def observe(t, p):
            phase, frac = majority_phase(p, params)
            times.append(t)
            phases.append(phase)
            fracs.append(frac)
            adjacent.append(phases_adjacent(p, params))

        eng = MatchingEngine(proto, pop, rng=np.random.default_rng(11))
        eng.run(rounds=12000, observer=observe, observe_every=10)
        return params, times, phases, fracs, adjacent

    def test_ticks_progress_cyclically(self, run):
        params, times, phases, fracs, _ = run
        ticks = extract_ticks(times, phases, fracs, quorum=0.95)
        assert ticks.count >= 10
        seq = ticks.phases
        # after the startup transient, ticks advance by exactly +1 mod m
        settled = seq[3:]
        assert all((b - a) % params.module == 1 for a, b in zip(settled, settled[1:]))

    def test_tick_intervals_are_regular(self, run):
        params, times, phases, fracs, _ = run
        ticks = extract_ticks(times, phases, fracs, quorum=0.95)
        intervals = ticks.intervals[3:]
        assert intervals.min() > 0.3 * np.median(intervals)
        assert intervals.max() < 3.0 * np.median(intervals)

    def test_agents_synchronized_after_transient(self, run):
        _, times, _, _, adjacent = run
        # Theorem 5.2: phases agree up to a difference of at most 1 after
        # the initial synchronization
        tail = adjacent[len(adjacent) // 4 :]
        violations = sum(1 for ok in tail if not ok)
        assert violations / len(tail) < 0.02
