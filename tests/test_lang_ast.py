"""Tests for the sequential language AST."""

import pytest

from repro.core import Rule, V
from repro.core.formula import TRUE
from repro.lang import (
    Assign,
    Execute,
    IfExists,
    Program,
    Repeat,
    RepeatLog,
    ThreadDef,
    VarDecl,
)


def tiny_program(body=None):
    if body is None:
        body = [Assign("L", TRUE)]
    return Program(
        "P",
        [VarDecl("L", init=True, role="output")],
        [ThreadDef("Main", body=Repeat(body), uses=("L",))],
    )


class TestDeclarations:
    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            VarDecl("L", role="bogus")

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            Program(
                "P",
                [VarDecl("L"), VarDecl("L")],
                [ThreadDef("Main", body=Repeat([Assign("L", TRUE)]))],
            )

    def test_needs_sequential_thread(self):
        with pytest.raises(ValueError):
            Program(
                "P",
                [VarDecl("L")],
                [ThreadDef("bg", perpetual=[Rule(None, None, {"L": True})])],
            )

    def test_thread_body_xor_perpetual(self):
        with pytest.raises(ValueError):
            ThreadDef("t")
        with pytest.raises(ValueError):
            ThreadDef(
                "t",
                body=Repeat([Assign("L", TRUE)]),
                perpetual=[Rule(None, None, {"L": True})],
            )

    def test_variable_lookup(self):
        prog = tiny_program()
        assert prog.variable("L").role == "output"
        with pytest.raises(KeyError):
            prog.variable("missing")

    def test_inputs_outputs(self):
        prog = Program(
            "P",
            [VarDecl("A", role="input"), VarDecl("Y", role="output"), VarDecl("W")],
            [ThreadDef("Main", body=Repeat([Assign("Y", V("A"))]))],
        )
        assert prog.inputs == ["A"]
        assert prog.outputs == ["Y"]


class TestInstructions:
    def test_assign_requires_condition(self):
        with pytest.raises(ValueError):
            Assign("X")

    def test_random_assign_excludes_condition(self):
        with pytest.raises(ValueError):
            Assign("X", V("Y"), random=True)

    def test_if_exists_coerces_condition(self):
        instr = IfExists(True, [Assign("X", TRUE)])
        assert instr.condition is not None

    def test_execute_stores_rules(self):
        rule = Rule(V("A"), None, {"A": False})
        instr = Execute([rule], c=3)
        assert instr.rules == (rule,)
        assert instr.c == 3


class TestStructure:
    def test_loop_depth_flat(self):
        assert tiny_program().loop_depth() == 1

    def test_loop_depth_nested(self):
        body = [RepeatLog([RepeatLog([Assign("L", TRUE)])])]
        assert tiny_program(body).loop_depth() == 3

    def test_loop_depth_through_branches(self):
        body = [IfExists(V("L"), [RepeatLog([Assign("L", TRUE)])])]
        assert tiny_program(body).loop_depth() == 2

    def test_main_thread(self):
        prog = tiny_program()
        assert prog.main_thread.name == "Main"

    def test_background_threads(self):
        prog = Program(
            "P",
            [VarDecl("L")],
            [
                ThreadDef("Main", body=Repeat([Assign("L", TRUE)])),
                ThreadDef("bg", perpetual=[Rule(None, None, {"L": True})]),
            ],
        )
        assert [t.name for t in prog.background_threads] == ["bg"]


class TestPretty:
    def test_program_pretty_mentions_constructs(self):
        body = [
            IfExists(
                V("L"),
                [Assign("L", random=True)],
                [Execute([Rule(V("L"), None, {"L": False})], c=2)],
            ),
            RepeatLog([Assign("L", TRUE)], c=4),
        ]
        text = tiny_program(body).pretty()
        assert "if exists (L):" in text
        assert "uniformly at random" in text
        assert "repeat >= 4 ln n times:" in text
        assert "execute for >= 2 ln n rounds ruleset:" in text
        assert "def protocol P" in text

    def test_paper_programs_pretty(self):
        from repro.protocols import (
            leader_election_program,
            majority_program,
            leader_election_exact_program,
        )

        for prog in (
            leader_election_program(),
            majority_program(),
            leader_election_exact_program(),
        ):
            text = prog.pretty()
            assert prog.name in text
            assert "repeat:" in text
