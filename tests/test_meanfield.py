"""Tests for the mean-field ODE system."""

import numpy as np
import pytest

from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import MeanFieldSystem
from repro.engine.table import reachable_codes


@pytest.fixture
def epidemic():
    schema = StateSchema()
    schema.flag("I")
    return single_thread(
        "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
    )


class TestConstruction:
    def test_reachable_closure(self, epidemic):
        codes = reachable_codes(epidemic, [0, 1])
        assert sorted(codes) == [0, 1]

    def test_reachable_discovers_states(self):
        schema = StateSchema()
        schema.enum("x", 3)
        proto = single_thread(
            "chain",
            schema,
            [
                Rule(V("x", 0), None, {"x": 1}),
                Rule(V("x", 1), None, {"x": 2}),
            ],
        )
        codes = reachable_codes(proto, [schema.pack({"x": 0})])
        assert len(codes) == 3

    def test_reachable_limit(self):
        schema = StateSchema()
        schema.enum("x", 50)

        def advance(a, b):
            return [({"x": min(a["x"] + 1, 49)}, {}, 1.0)] if a["x"] < 49 else []

        from repro.core import DynamicRule

        proto = single_thread("long", schema, [DynamicRule(None, None, advance)])
        with pytest.raises(RuntimeError):
            reachable_codes(proto, [0], limit=10)

    def test_escaping_state_rejected(self):
        schema = StateSchema()
        schema.enum("x", 3)
        proto = single_thread(
            "chain", schema, [Rule(V("x", 1), None, {"x": 2})]
        )
        with pytest.raises(ValueError):
            # state 2 is reachable from 1 but missing from the state list
            MeanFieldSystem(proto, [schema.pack({"x": 0}), schema.pack({"x": 1})])


class TestDynamics:
    def test_epidemic_logistic_growth(self, epidemic):
        mf = MeanFieldSystem(epidemic, [0, 1])
        schema = epidemic.schema
        x0 = mf.initial_vector(
            Population.from_groups(schema, [({"I": True}, 10), ({}, 990)])
        )
        solution = mf.integrate(x0, (0.0, 40.0))
        infected = mf.fraction_series(solution, schema.pack({"I": True}))
        assert infected[-1] == pytest.approx(1.0, abs=1e-4)

    def test_conservation(self, epidemic):
        mf = MeanFieldSystem(epidemic, [0, 1])
        x0 = np.array([0.99, 0.01])
        solution = mf.integrate(x0, (0.0, 30.0))
        assert mf.conservation_error(solution) < 1e-6

    def test_derivative_zero_at_fixed_point(self, epidemic):
        mf = MeanFieldSystem(epidemic, [0, 1])
        # all infected is absorbing
        x = np.array([0.0, 1.0])
        assert np.abs(mf.derivative(x)).max() < 1e-12

    def test_derivative_sign(self, epidemic):
        mf = MeanFieldSystem(epidemic, [0, 1])
        x = np.array([0.5, 0.5])
        dx = mf.derivative(x)
        # susceptible fraction (index of code 0) decreases
        assert dx[mf.index[0]] < 0
        assert dx[mf.index[1]] > 0

    def test_matches_stochastic_epidemic(self, epidemic):
        """Large-n stochastic trajectory tracks the ODE."""
        from repro.engine import CountEngine, Trace

        schema = epidemic.schema
        n = 20000
        pop = Population.from_groups(schema, [({"I": True}, 200), ({}, n - 200)])
        trace = Trace({"I": V("I")})
        CountEngine(epidemic, pop, rng=np.random.default_rng(0)).run(
            rounds=8, observer=trace, observe_every=1.0
        )
        mf = MeanFieldSystem(epidemic, [0, 1])
        x0 = np.zeros(2)
        x0[mf.index[schema.pack({"I": True})]] = 0.01
        x0[mf.index[0]] = 0.99
        solution = mf.integrate(x0, (0.0, 8.0), t_eval=trace.times)
        ode = mf.fraction_series(solution, schema.pack({"I": True}))
        sim = trace.series("I") / n
        assert np.abs(ode - sim).max() < 0.05
