"""Failure-injection tests: the paper's preconditions really are needed,
and the protocols degrade exactly as the theory predicts when they are
violated."""

import numpy as np
import pytest

from repro.core import Population, V
from repro.engine import MatchingEngine, Trace
from repro.oscillator import (
    a_min,
    extract_oscillations,
    make_oscillator_protocol,
    species,
    species_counts,
    strong_value,
    weak_value,
)
from repro.clocks import ClockParams, extract_ticks, majority_phase, make_clock_protocol


class TestOscillatorWithoutX:
    """Theorem 5.1(ii) requires #X >= 1: without reseeding, species go
    extinct and the oscillation collapses to an absorbing state."""

    def test_species_extinction_without_x(self):
        proto = make_oscillator_protocol()
        schema = proto.schema
        n = 1000
        pop = Population.from_groups(
            schema,
            [
                ({"osc": strong_value(0)}, 800),
                ({"osc": weak_value(1)}, 170),
                ({"osc": weak_value(2)}, 30),
            ],
        )
        eng = MatchingEngine(proto, pop, rng=np.random.default_rng(0))
        eng.run(rounds=12000)
        counts = species_counts(eng.population)
        # at least one species dead, and the dynamics frozen on one species
        assert min(counts) == 0
        assert max(counts) > 0.9 * n

    def test_with_x_all_species_recur(self):
        proto = make_oscillator_protocol()
        schema = proto.schema
        n = 1000
        pop = Population.from_groups(
            schema,
            [
                ({"osc": strong_value(0)}, 797),
                ({"osc": weak_value(1)}, 170),
                ({"osc": weak_value(2)}, 30),
                ({"osc": weak_value(0), "X": True}, 3),
            ],
        )
        eng = MatchingEngine(proto, pop, rng=np.random.default_rng(0))
        seen_alive = [0, 0, 0]
        for _ in range(12):
            eng.run(rounds=1000)
            for i, c in enumerate(species_counts(eng.population)):
                if c > 0:
                    seen_alive[i] += 1
        assert all(alive >= 6 for alive in seen_alive)


class TestOscillatorWithTooMuchX:
    """#X <= n^{1-eps} is also needed: a linear X-fraction pins the system
    near the centre (reseeding noise dominates the drift)."""

    def test_linear_x_prevents_deep_oscillation(self):
        proto = make_oscillator_protocol()
        schema = proto.schema
        n = 1000
        pop = Population.from_groups(
            schema,
            [
                ({"osc": strong_value(0)}, 400),
                ({"osc": weak_value(1)}, 150),
                ({"osc": weak_value(2)}, 50),
                ({"osc": weak_value(0), "X": True}, 400),
            ],
        )
        eng = MatchingEngine(proto, pop, rng=np.random.default_rng(1))
        minima = []
        for _ in range(10):
            eng.run(rounds=500)
            minima.append(a_min(eng.population))
        # with 40% X agents, a_min never gets polynomially small
        assert min(minima) > n ** 0.5


class TestClockWithoutOscillation:
    """The clock only ticks when driven by a correctly oscillating P_o."""

    def test_clock_frozen_with_saturating_x(self):
        params = ClockParams()
        proto = make_clock_protocol(params=params)
        schema = proto.schema
        n = 600
        pop = Population.from_groups(
            schema,
            [
                ({"osc": weak_value(0), "clk": 0}, 120),
                ({"osc": weak_value(1), "clk": 0}, 120),
                ({"osc": weak_value(2), "clk": 0}, 120),
                ({"osc": weak_value(0), "X": True, "clk": 0}, 240),
            ],
        )
        times, phases, fracs = [], [], []

        def observe(t, p):
            phase, frac = majority_phase(p, params)
            times.append(t)
            phases.append(phase)
            fracs.append(frac)

        eng = MatchingEngine(proto, pop, rng=np.random.default_rng(2))
        eng.run(rounds=6000, observer=observe, observe_every=20)
        ticks = extract_ticks(times, phases, fracs, quorum=0.95)
        # compared with ~9 ticks for a healthy clock over this horizon
        assert ticks.count <= 3


class TestDegenerateInputs:
    def test_majority_all_blank(self):
        from repro.protocols import run_majority

        out, _, _ = run_majority(200, 0, 0, rng=np.random.default_rng(3))
        # no tokens at all: output stays at its initial (False) value
        assert out is False

    def test_majority_unanimous(self):
        from repro.protocols import run_majority

        out, _, _ = run_majority(200, 200, 0, rng=np.random.default_rng(4))
        assert out is True

    def test_leader_election_two_agents(self):
        from repro.protocols import run_leader_election

        ok, _, _ = run_leader_election(2, rng=np.random.default_rng(5))
        assert ok

    def test_plurality_tie_never_crowns_the_loser(self):
        """With a tie for the maximum the comparison between the tied
        colours is a coin flip (the paper assumes distinct cardinalities);
        the protocol must still never declare the clear loser."""
        from repro.protocols import run_plurality

        winner, _, _ = run_plurality(
            [40, 40, 20], n=120, max_iterations=2, rng=np.random.default_rng(6)
        )
        assert winner in (None, 0, 1)

    def test_elimination_from_two_agents(self):
        from repro.control import make_elimination_protocol
        from repro.engine import CountEngine

        proto = make_elimination_protocol()
        pop = Population.uniform(proto.schema, 2, {"X": True})
        CountEngine(proto, pop, rng=np.random.default_rng(7)).run(rounds=100)
        assert pop.count(V("X")) == 1
