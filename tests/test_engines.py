"""Cross-engine tests: exactness, agreement and instrumentation.

The three stochastic engines sample related processes (CountEngine and
ArrayEngine the sequential scheduler exactly; MatchingEngine the
random-matching scheduler) — on a simple epidemic their hitting times must
agree statistically, and conserved quantities must be conserved exactly.
"""

import numpy as np
import pytest

from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import ArrayEngine, CountEngine, MatchingEngine, Trace
from repro.engine.batch import _collision_free_prefix
from repro.engine.dense import DenseTable
from repro.engine.table import LazyTable


@pytest.fixture
def epidemic():
    schema = StateSchema()
    schema.flag("I")
    return single_thread(
        "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
    )


def epidemic_population(schema, n, infected=1):
    return Population.from_groups(
        schema, [({"I": True}, infected), ({"I": False}, n - infected)]
    )


class TestCountEngine:
    def test_runs_to_completion(self, epidemic):
        pop = epidemic_population(epidemic.schema, 500)
        eng = CountEngine(epidemic, pop, rng=np.random.default_rng(0))
        eng.run(stop=lambda p: p.all_satisfy(V("I")))
        assert pop.count(V("I")) == 500

    def test_population_size_conserved(self, epidemic):
        pop = epidemic_population(epidemic.schema, 300)
        eng = CountEngine(epidemic, pop, rng=np.random.default_rng(1))
        eng.run(rounds=5)
        assert pop.n == 300

    def test_silent_protocol_fast_forwards(self, epidemic):
        pop = Population.uniform(epidemic.schema, 100, {"I": True})
        eng = CountEngine(epidemic, pop, rng=np.random.default_rng(2))
        eng.run(rounds=50)
        assert eng.rounds == pytest.approx(50.0)
        assert eng.events == 0

    def test_budget_respected(self, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = CountEngine(epidemic, pop, rng=np.random.default_rng(3))
        eng.run(rounds=2)
        assert eng.rounds == pytest.approx(2.0, abs=0.01)

    def test_interactions_budget(self, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = CountEngine(epidemic, pop, rng=np.random.default_rng(3))
        eng.run(interactions=500)
        assert eng.interactions == 500

    def test_max_events(self, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = CountEngine(epidemic, pop, rng=np.random.default_rng(4))
        eng.run(max_events=10, rounds=1000)
        assert eng.events <= 10

    def test_requires_budget_or_stop(self, epidemic):
        pop = epidemic_population(epidemic.schema, 100)
        eng = CountEngine(epidemic, pop, rng=np.random.default_rng(5))
        with pytest.raises(ValueError):
            eng.run()

    def test_tiny_population_rejected(self, epidemic):
        pop = epidemic_population(epidemic.schema, 1)
        with pytest.raises(ValueError):
            CountEngine(epidemic, pop)

    def test_observer_grid_is_uniform(self, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = CountEngine(epidemic, pop, rng=np.random.default_rng(6))
        trace = Trace({"I": V("I")})
        eng.run(rounds=10, observer=trace, observe_every=1.0)
        # snapshots at t = 0, 1, ..., 10 inclusive
        assert len(trace) == 11
        assert np.allclose(np.diff(trace.times), 1.0)

    def test_observer_sees_monotone_epidemic(self, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = CountEngine(epidemic, pop, rng=np.random.default_rng(7))
        trace = Trace({"I": V("I")})
        eng.run(rounds=30, observer=trace, observe_every=0.5)
        series = trace.series("I")
        assert (np.diff(series) >= 0).all()

    def test_continuation_resumes_budget(self, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = CountEngine(epidemic, pop, rng=np.random.default_rng(8))
        eng.run(rounds=1)
        eng.run(rounds=1)
        assert eng.rounds == pytest.approx(2.0, abs=0.01)


class TestArrayEngine:
    def test_runs_to_completion(self, epidemic):
        pop = epidemic_population(epidemic.schema, 500)
        eng = ArrayEngine(epidemic, pop, rng=np.random.default_rng(0))
        eng.run(stop=lambda p: p.all_satisfy(V("I")), stop_every=1.0)
        assert eng.population.count(V("I")) == 500

    def test_population_property_counts(self, epidemic):
        pop = epidemic_population(epidemic.schema, 100)
        eng = ArrayEngine(epidemic, pop, rng=np.random.default_rng(1))
        assert eng.population.n == 100

    def test_budget(self, epidemic):
        pop = epidemic_population(epidemic.schema, 100)
        eng = ArrayEngine(epidemic, pop, rng=np.random.default_rng(2))
        eng.run(rounds=3)
        assert eng.rounds >= 3.0

    def test_collision_free_prefix_simple(self):
        idx_a = np.array([0, 2, 4])
        idx_b = np.array([1, 3, 5])
        assert _collision_free_prefix(idx_a, idx_b) == 3

    def test_collision_free_prefix_detects_repeat(self):
        idx_a = np.array([0, 2, 0])
        idx_b = np.array([1, 3, 5])
        assert _collision_free_prefix(idx_a, idx_b) == 2

    def test_collision_free_prefix_within_pair_boundary(self):
        idx_a = np.array([0, 1])
        idx_b = np.array([1, 2])
        assert _collision_free_prefix(idx_a, idx_b) == 1


class TestMatchingEngine:
    def test_one_round_touches_half(self, epidemic):
        # starting from 50% infected, a single matching infects many
        pop = epidemic_population(epidemic.schema, 1000, infected=500)
        eng = MatchingEngine(epidemic, pop, rng=np.random.default_rng(0))
        changed = eng.step()
        assert changed > 50

    def test_rounds_counter(self, epidemic):
        pop = epidemic_population(epidemic.schema, 100)
        eng = MatchingEngine(epidemic, pop, rng=np.random.default_rng(1))
        eng.run(rounds=7)
        assert eng.rounds == 7.0

    def test_odd_population_leaves_idler(self, epidemic):
        pop = epidemic_population(epidemic.schema, 101)
        eng = MatchingEngine(epidemic, pop, rng=np.random.default_rng(2))
        eng.run(rounds=5)
        assert eng.population.n == 101


class TestEngineAgreement:
    """CountEngine and ArrayEngine sample the same sequential process."""

    @staticmethod
    def _hitting_times(engine_cls, protocol, n, seeds):
        times = []
        for seed in seeds:
            pop = epidemic_population(protocol.schema, n)
            eng = engine_cls(protocol, pop, rng=np.random.default_rng(seed))
            if engine_cls is CountEngine:
                eng.run(stop=lambda p: p.all_satisfy(V("I")))
            else:
                eng.run(stop=lambda p: p.all_satisfy(V("I")), stop_every=0.25)
            times.append(eng.rounds)
        return np.asarray(times)

    def test_sequential_engines_agree(self, epidemic):
        n = 300
        count_times = self._hitting_times(CountEngine, epidemic, n, range(12))
        array_times = self._hitting_times(ArrayEngine, epidemic, n, range(100, 112))
        # full-epidemic time concentrates near 2 ln n; medians must agree
        assert abs(np.median(count_times) - np.median(array_times)) < 4.0

    def test_epidemic_time_scale(self, epidemic):
        n = 1000
        times = self._hitting_times(CountEngine, epidemic, n, range(8))
        expected = 2 * np.log(n)
        assert 0.6 * expected < np.median(times) < 1.8 * expected


class TestTables:
    def test_lazy_table_caches(self, epidemic):
        table = LazyTable(epidemic)
        table.outcomes(0, 1)
        misses = table.misses
        table.outcomes(0, 1)
        assert table.misses == misses
        assert table.hits >= 1

    def test_dense_and_lazy_agree(self, epidemic):
        lazy = LazyTable(epidemic)
        dense = DenseTable(epidemic)
        for a in range(2):
            for b in range(2):
                assert lazy.outcomes(a, b).p_change == pytest.approx(
                    dense.outcomes(a, b).p_change
                )

    def test_dense_apply_matches_distribution(self, epidemic):
        dense = DenseTable(epidemic)
        rng = np.random.default_rng(0)
        agents = np.array([1, 0, 1, 0, 1, 0], dtype=np.int64)
        # initiators infected (1), responders susceptible (0): always infects
        dense.apply(agents, np.array([0, 2, 4]), np.array([1, 3, 5]), rng)
        assert agents.sum() == 6
