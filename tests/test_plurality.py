"""Tests for plurality consensus (Section 1.1's adaptation of Majority)."""

import numpy as np
import pytest

from repro.core import V
from repro.protocols import plurality_population, plurality_program, run_plurality
from repro.protocols.plurality import beats_var, color_var, winner_var


class TestProgramShape:
    def test_pairwise_comparison_count(self):
        prog = plurality_program(4)
        beats = [v.name for v in prog.variables if v.name.startswith("B")]
        # one comparison bit per unordered pair, plus the Bs working flag
        assert len([b for b in beats if "_" in b]) == 6

    def test_state_count_is_quadratic_in_l(self):
        sizes = {}
        for l in (2, 4):
            prog = plurality_program(l)
            pair_bits = [v for v in prog.variables if "_" in v.name]
            sizes[l] = len(pair_bits)
        assert sizes[4] == 6 and sizes[2] == 1

    def test_requires_two_colors(self):
        with pytest.raises(ValueError):
            plurality_program(1)

    def test_population(self):
        _, pop = plurality_population([10, 20, 5], n=50)
        assert pop.count(V(color_var(1))) == 20
        assert pop.n == 50


class TestCorrectness:
    @pytest.mark.parametrize(
        "counts,winner",
        [
            ([50, 30, 20], 0),
            ([30, 50, 20], 1),
            ([20, 30, 50], 2),
        ],
    )
    def test_clear_plurality(self, counts, winner):
        result, _, _ = run_plurality(
            counts, n=150, rng=np.random.default_rng(sum(counts) + winner)
        )
        assert result == winner

    def test_narrow_plurality(self):
        result, _, _ = run_plurality(
            [34, 33, 33], n=150, rng=np.random.default_rng(3)
        )
        assert result == 0

    def test_four_colors(self):
        result, _, _ = run_plurality(
            [20, 25, 40, 15], n=120, rng=np.random.default_rng(4)
        )
        assert result == 2

    def test_winner_none_until_converged(self):
        from repro.protocols import plurality_winner

        _, pop = plurality_population([10, 20], n=40)
        assert plurality_winner(pop, 2) is None
