"""Tests for the #X control processes (Propositions 5.3-5.5)."""

import numpy as np
import pytest

from repro.core import Population, V
from repro.engine import CountEngine, Trace
from repro.control import (
    KLevelParams,
    make_elimination_protocol,
    make_junta_protocol,
    make_klevel_protocol,
    recommended_level_cap,
)


class TestElimination:
    """Proposition 5.3: #X >= 1 always; #X <= n^{1-eps} after O(n^eps)."""

    def _run_until(self, n, target, seed=0):
        proto = make_elimination_protocol()
        pop = Population.uniform(proto.schema, n, {"X": True})
        eng = CountEngine(proto, pop, rng=np.random.default_rng(seed))
        eng.run(stop=lambda p: p.count(V("X")) <= target, rounds=100 * n)
        return eng, pop

    def test_x_never_empty(self):
        proto = make_elimination_protocol()
        pop = Population.uniform(proto.schema, 500, {"X": True})
        eng = CountEngine(proto, pop, rng=np.random.default_rng(1))
        eng.run(rounds=100000)
        assert pop.count(V("X")) == 1  # the absorbing configuration

    def test_x_monotone_nonincreasing(self):
        proto = make_elimination_protocol()
        pop = Population.uniform(proto.schema, 1000, {"X": True})
        trace = Trace({"X": V("X")})
        CountEngine(proto, pop, rng=np.random.default_rng(2)).run(
            rounds=100, observer=trace, observe_every=1.0
        )
        assert (np.diff(trace.series("X")) <= 0).all()

    def test_time_scales_as_sqrt_n(self):
        """#X <= sqrt(n) after ~sqrt(n) rounds (eps = 1/2)."""
        times = {}
        for n in (1000, 16000):
            eng, _ = self._run_until(n, int(n ** 0.5), seed=3)
            times[n] = eng.rounds
        ratio = times[16000] / times[1000]
        assert 2.0 < ratio < 8.0  # sqrt(16) = 4

    def test_hyperbolic_decay_shape(self):
        """#X(t) ~ n / t."""
        proto = make_elimination_protocol()
        n = 20000
        pop = Population.uniform(proto.schema, n, {"X": True})
        trace = Trace({"X": V("X")})
        CountEngine(proto, pop, rng=np.random.default_rng(4)).run(
            rounds=60, observer=trace, observe_every=2.0
        )
        t = trace.times[5:]
        x = trace.series("X")[5:]
        product = x * t / n
        # x * t / n is roughly a constant for hyperbolic decay
        assert product.max() / max(product.min(), 1e-9) < 8.0


class TestKLevel:
    """Proposition 5.5: polynomially decaying Z, stretched-exponential X."""

    def _trace(self, k, n=5000, rounds=300, seed=0):
        proto = make_klevel_protocol(params=KLevelParams(k=k))
        pop = Population.uniform(proto.schema, n, {"X": True, "Z": True})
        trace = Trace({"X": V("X"), "Z": V("Z")})
        CountEngine(proto, pop, rng=np.random.default_rng(seed)).run(
            rounds=rounds, observer=trace, observe_every=5.0
        )
        return trace, n

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KLevelParams(k=0)

    def test_x_drops_below_threshold_fast(self):
        trace, n = self._trace(k=2)
        x = trace.series("X")
        threshold = n ** 0.5
        below = np.nonzero(x < threshold)[0]
        assert len(below) > 0
        assert trace.times[below[0]] < 200  # polylog, not polynomial

    def test_z_decays_polynomially(self):
        trace, n = self._trace(k=2)
        t = trace.times[4:]
        z = trace.series("Z")[4:]
        mask = z > 0
        from repro.analysis import fit_power

        fit = fit_power(t[mask], z[mask])
        # d|Z|/dt = -|Z| (|Z|/n)^k solves to Z ~ n t^{-1/k}
        assert -1.2 < fit.exponent < -0.2

    def test_larger_k_decays_slower(self):
        trace1, n = self._trace(k=1, rounds=150)
        trace2, _ = self._trace(k=2, rounds=150)
        assert trace1.series("X")[-1] <= trace2.series("X")[-1]

    def test_x_subset_dynamics_dont_revive(self):
        trace, _ = self._trace(k=1, rounds=200)
        x = trace.series("X")
        assert (np.diff(x) <= 0).all()


class TestJunta:
    """Proposition 5.4's contract: #X >= 1 always, small after O(log n)."""

    def _run(self, n, rounds, seed=0):
        proto = make_junta_protocol()
        pop = Population.uniform(proto.schema, n, {"X": True})
        trace = Trace({"X": V("X")})
        CountEngine(proto, pop, rng=np.random.default_rng(seed)).run(
            rounds=rounds, observer=trace, observe_every=2.0
        )
        return trace, pop

    def test_x_always_positive(self):
        trace, pop = self._run(2000, 120)
        assert trace.series("X").min() >= 1
        assert pop.count(V("X")) >= 1

    def test_junta_is_small(self):
        _, pop = self._run(2000, 120, seed=1)
        assert pop.count(V("X")) <= 2000 ** 0.5

    def test_time_is_logarithmic(self):
        """Rounds to #X <= sqrt(n) grows mildly with n."""
        times = []
        for n, seed in ((500, 2), (8000, 3)):
            proto = make_junta_protocol()
            pop = Population.uniform(proto.schema, n, {"X": True})
            eng = CountEngine(proto, pop, rng=np.random.default_rng(seed))
            eng.run(stop=lambda p: p.count(V("X")) <= n ** 0.5, rounds=2000)
            times.append(eng.rounds)
        # 16x population growth should cost far less than 4x time
        assert times[1] / times[0] < 3.0

    def test_recommended_level_cap(self):
        assert recommended_level_cap(2 ** 20) >= 60
        assert recommended_level_cap(2) >= 8
