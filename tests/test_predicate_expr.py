"""Tests for the predicate expression language."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.predicates import Remainder, Threshold
from repro.predicates.expr import PredicateSyntaxError, parse_predicate


class TestAtoms:
    def test_simple_comparison(self):
        pred = parse_predicate("A > B")
        assert isinstance(pred, Threshold)
        assert pred.evaluate({"A": 3, "B": 2})
        assert not pred.evaluate({"A": 2, "B": 2})

    def test_weighted_terms(self):
        pred = parse_predicate("2*A - B >= 3")
        assert pred.evaluate({"A": 2, "B": 1})
        assert not pred.evaluate({"A": 1, "B": 0})

    def test_ge_vs_gt(self):
        assert parse_predicate("A >= 5").evaluate({"A": 5})
        assert not parse_predicate("A > 5").evaluate({"A": 5})

    def test_lt_le(self):
        assert parse_predicate("A < 5").evaluate({"A": 4})
        assert not parse_predicate("A < 5").evaluate({"A": 5})
        assert parse_predicate("A <= 5").evaluate({"A": 5})

    def test_equality(self):
        pred = parse_predicate("A == 4")
        assert pred.evaluate({"A": 4})
        assert not pred.evaluate({"A": 3})
        assert not pred.evaluate({"A": 5})

    def test_constants_on_both_sides(self):
        pred = parse_predicate("A + 2 >= B + 5")
        assert pred.evaluate({"A": 4, "B": 1})
        assert not pred.evaluate({"A": 2, "B": 0})

    def test_modular_atom(self):
        pred = parse_predicate("A % 3 == 2")
        assert isinstance(pred, Remainder)
        assert pred.evaluate({"A": 5})
        assert not pred.evaluate({"A": 6})

    def test_modular_with_coefficients(self):
        pred = parse_predicate("2*A + B % 4 == 1")
        assert pred.evaluate({"A": 0, "B": 1})
        assert pred.evaluate({"A": 2, "B": 1})


class TestBooleanLayer:
    def test_and(self):
        pred = parse_predicate("A >= 3 and A % 2 == 0")
        assert pred.evaluate({"A": 4})
        assert not pred.evaluate({"A": 3})

    def test_or(self):
        pred = parse_predicate("A >= 10 or B >= 10")
        assert pred.evaluate({"B": 11})

    def test_not(self):
        assert parse_predicate("not A >= 3").evaluate({"A": 2})

    def test_precedence(self):
        # and binds tighter than or
        pred = parse_predicate("A >= 10 or A >= 1 and B >= 1")
        assert pred.evaluate({"A": 1, "B": 1})
        assert not pred.evaluate({"A": 1, "B": 0})

    def test_parentheses(self):
        pred = parse_predicate("(A >= 10 or A >= 1) and B >= 1")
        assert not pred.evaluate({"A": 20, "B": 0})

    def test_matches_hand_built(self):
        from repro.predicates import at_least, parity

        text = parse_predicate("A >= 3 and A % 2 == 0")
        built = at_least("A", 3) & parity("A")
        for count in range(10):
            assert text.evaluate({"A": count}) == built.evaluate({"A": count})


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "A >=",
            ">= 3",
            "A ~ 3",
            "A % 3 >= 1",
            "3 >= 4",
            "(A >= 3",
            "A >= 3 and",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(PredicateSyntaxError):
            parse_predicate(bad)


@given(st.integers(0, 30), st.integers(0, 30), st.integers(-9, 9))
@settings(max_examples=80, deadline=None)
def test_parsed_comparison_matches_arithmetic(a, b, c):
    pred = parse_predicate("A - B >= {}".format(c) if c >= 0 else "A - B >= 0 - {}".format(-c))
    assert pred.evaluate({"A": a, "B": b}) == (a - b >= c)
