"""Tests for the execution tiers: T3 interpreter, T2 phased runner, and the
T1 compiler's wiring (end-to-end T1 behaviour is exercised in the
benchmarks; here we verify structure plus a short run)."""

import numpy as np
import pytest

from repro.core import Population, Rule, StateSchema, V
from repro.core.formula import FALSE, TRUE
from repro.lang import (
    Assign,
    Execute,
    IfExists,
    IdealInterpreter,
    PhasedRunner,
    Program,
    Repeat,
    RepeatLog,
    ThreadDef,
    VarDecl,
    compile_program,
    phased_schema,
    program_schema,
)


def flag_program(body, extra_vars=()):
    variables = [VarDecl("L", init=True), VarDecl("M", init=False)]
    variables += [VarDecl(name) for name in extra_vars]
    return Program("P", variables, [ThreadDef("Main", body=Repeat(body))])


def uniform_population(program, n):
    schema = program_schema(program)
    base = {d.name: d.init for d in program.variables}
    return schema, Population.uniform(schema, n, base)


class TestIdealInterpreter:
    def test_assignment_is_synchronous(self):
        prog = flag_program([Assign("M", V("L"))])
        _, pop = uniform_population(prog, 100)
        interp = IdealInterpreter(prog, pop, rng=np.random.default_rng(0))
        interp.run_iteration()
        assert pop.count(V("M")) == 100

    def test_constant_assignment(self):
        prog = flag_program([Assign("L", FALSE)])
        _, pop = uniform_population(prog, 50)
        IdealInterpreter(prog, pop, rng=np.random.default_rng(0)).run_iteration()
        assert pop.count(V("L")) == 0

    def test_random_assignment_splits(self):
        prog = flag_program([Assign("M", random=True)])
        _, pop = uniform_population(prog, 2000)
        IdealInterpreter(prog, pop, rng=np.random.default_rng(1)).run_iteration()
        count = pop.count(V("M"))
        assert 800 < count < 1200

    def test_if_exists_takes_then(self):
        prog = flag_program([IfExists(V("L"), [Assign("M", TRUE)])])
        _, pop = uniform_population(prog, 20)
        IdealInterpreter(prog, pop, rng=np.random.default_rng(2)).run_iteration()
        assert pop.count(V("M")) == 20

    def test_if_exists_takes_else(self):
        prog = flag_program(
            [IfExists(V("M"), [Assign("L", FALSE)], [Assign("M", TRUE)])]
        )
        _, pop = uniform_population(prog, 20)
        IdealInterpreter(prog, pop, rng=np.random.default_rng(3)).run_iteration()
        assert pop.count(V("M")) == 20
        assert pop.count(V("L")) == 20

    def test_repeat_log_iterates(self):
        # body flips M each pass; after ceil(c ln n) passes the parity is fixed
        prog = flag_program([RepeatLog([Assign("M", ~V("M"))], c=2)])
        _, pop = uniform_population(prog, 100)
        interp = IdealInterpreter(prog, pop, c=2.0, rng=np.random.default_rng(4))
        interp.run_iteration()
        import math

        passes = math.ceil(2 * math.log(100))
        expected = passes % 2 == 1
        assert pop.all_satisfy(V("M") if expected else ~V("M"))

    def test_execute_runs_rules(self):
        rule = Rule(V("L"), ~V("L") & ~V("M"), None, {"M": True})
        prog = flag_program([Execute([rule], c=6)])
        schema = program_schema(prog)
        pop = Population.from_groups(
            schema, [({"L": True}, 5), ({}, 95)]
        )
        IdealInterpreter(prog, pop, rng=np.random.default_rng(5)).run_iteration()
        assert pop.count(V("M")) > 50

    def test_background_thread_runs_during_instructions(self):
        bg_rule = Rule(V("L"), V("L"), None, {"L": False})
        prog = Program(
            "P",
            [VarDecl("L", init=True), VarDecl("M")],
            [
                ThreadDef("Main", body=Repeat([Assign("M", TRUE)])),
                ThreadDef("bg", perpetual=[bg_rule], uses=("L",)),
            ],
        )
        schema = program_schema(prog)
        pop = Population.uniform(schema, 200, {"L": True, "M": False})
        interp = IdealInterpreter(prog, pop, rng=np.random.default_rng(6))
        interp.run(3)
        assert pop.count(V("L")) < 200  # the background elimination acted

    def test_rounds_accounting(self):
        prog = flag_program([Assign("M", TRUE), Assign("M", FALSE)])
        _, pop = uniform_population(prog, 100)
        interp = IdealInterpreter(prog, pop, c=2.0, rng=np.random.default_rng(7))
        stats = interp.run_iteration()
        assert stats.rounds == pytest.approx(2 * 2.0 * np.log(100))

    def test_stop_callback(self):
        prog = flag_program([Assign("M", TRUE)])
        _, pop = uniform_population(prog, 50)
        interp = IdealInterpreter(prog, pop, rng=np.random.default_rng(8))
        done = interp.run(10, stop=lambda p: p.count(V("M")) == 50)
        assert done == 1


class TestPhasedRunner:
    def test_assignment_reaches_all_agents(self):
        prog = flag_program([Assign("M", V("L"))])
        schema = phased_schema(prog)
        base = {d.name: d.init for d in prog.variables}
        pop = Population.uniform(schema, 300, base)
        runner = PhasedRunner(prog, pop, rng=np.random.default_rng(0))
        runner.run_iteration()
        assert pop.count(V("M")) >= 295  # w.h.p. construction, not exact

    def test_branch_respected(self):
        prog = flag_program(
            [IfExists(V("M"), [Assign("L", FALSE)], [Assign("M", TRUE)])]
        )
        schema = phased_schema(prog)
        base = {d.name: d.init for d in prog.variables}
        pop = Population.uniform(schema, 300, base)
        runner = PhasedRunner(prog, pop, rng=np.random.default_rng(1))
        runner.run_iteration()
        # else branch ran: most agents set M, and L untouched for most
        assert pop.count(V("M")) >= 290
        assert pop.count(V("L")) >= 290

    def test_t2_agrees_with_t3_on_leader_election(self):
        from repro.protocols import leader_election_program

        prog = leader_election_program()
        schema = phased_schema(prog)
        base = {d.name: d.init for d in prog.variables}
        pop = Population.uniform(schema, 400, base)
        runner = PhasedRunner(prog, pop, rng=np.random.default_rng(2))
        runner.run(60, stop=lambda p: p.count(V("L")) == 1)
        assert pop.count(V("L")) == 1


class TestCompiler:
    @pytest.fixture(scope="class")
    def compiled(self):
        from repro.protocols import leader_election_program

        return compile_program(leader_election_program())

    def test_module_covers_width(self, compiled):
        assert compiled.hierarchy.params.module >= 4 * compiled.precompiled.width
        assert compiled.hierarchy.params.module % 12 == 0

    def test_depth_one_single_clock(self, compiled):
        assert compiled.hierarchy.params.levels == 1

    def test_threads_present(self, compiled):
        names = [t.name for t in compiled.protocol.threads]
        assert "Program" in names
        assert any(name.startswith("P_o") for name in names)
        assert any(name.startswith("C_o") for name in names)
        assert "XElimination" in names

    def test_leaf_guards_cover_non_nil_leaves(self, compiled):
        non_nil = [
            path for path, leaf in compiled.precompiled.leaves() if not leaf.is_nil
        ]
        assert len(compiled.leaf_guards) == len(non_nil)

    def test_guarded_rules_inactive_off_slot(self, compiled):
        schema = compiled.schema
        assignment = compiled.initial_assignment()
        # clock at ring 0 = phase 0 = slot 0; rules of slot 1 must not match
        code = schema.pack(assignment)
        slot1_rules = [
            r for r in compiled.protocol.thread("Program").rules if "(1,)" in (r.name or "")
        ]
        state = schema.unpack(code)
        assert all(not rule._ga(state) for rule in slot1_rules)

    def test_population_factory(self, compiled):
        pop = compiled.make_population([({}, 120)], x_agents=2)
        assert pop.n == 120
        assert pop.count(V("X")) == 2

    def test_population_rejects_all_x(self, compiled):
        with pytest.raises(ValueError):
            compiled.make_population([({}, 5)], x_agents=5)

    def test_majority_compiles_to_two_levels(self):
        from repro.protocols import majority_program

        compiled = compile_program(majority_program())
        assert compiled.hierarchy.params.levels == 2
        names = [t.name for t in compiled.protocol.threads]
        assert any(name.startswith("Sim-C2") for name in names)

    def test_short_run_executes_program_rules(self, compiled):
        """A brief full-stack run at tiny n performs the first assignment."""
        from repro.engine import MatchingEngine

        pop = compiled.make_population([({}, 120)], x_agents=2)
        eng = MatchingEngine(
            compiled.protocol, pop, rng=np.random.default_rng(9)
        )
        eng.run(rounds=25000)
        population = eng.population
        # after a few clock phases, D := L & F must have produced a strict
        # subset of leaders in D (F is a fresh coin per agent)
        d_count = population.count(V("D"))
        assert 0 < d_count < 120
