"""Bench regression gate: fresh run vs committed BENCH_*.json baselines."""

import importlib.util
import os
import sys

import pytest

BENCHMARKS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)


@pytest.fixture(scope="module")
def run_all():
    if BENCHMARKS_DIR not in sys.path:
        sys.path.insert(0, BENCHMARKS_DIR)  # for its `from _harness import`
    spec = importlib.util.spec_from_file_location(
        "bench_run_all", os.path.join(BENCHMARKS_DIR, "run_all.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def payload(wall=1.0, interactions=1000, n=100, seed=0):
    return {
        "experiment": "demo",
        "n": n,
        "seed": seed,
        "engines": {
            "fast": {"wall_seconds": wall, "interactions": interactions},
        },
    }


class TestCheckRegressions:
    def test_no_baseline_skips(self, run_all):
        regressions, skipped = run_all.check_regressions(
            payload(), None, group_key="engines", config_keys=("n", "seed")
        )
        assert regressions == []
        assert "no committed baseline" in skipped

    def test_config_mismatch_skips(self, run_all):
        regressions, skipped = run_all.check_regressions(
            payload(n=100), payload(n=999),
            group_key="engines", config_keys=("n", "seed"),
        )
        assert regressions == []
        assert "n=" in skipped

    def test_bghkpu_quick_downscale_skips_full_baseline(self, run_all):
        """A --quick run at n=10^6 never trips the committed n=10^8 gate."""
        quick = payload(wall=0.5, n=run_all.BGHKPU_QUICK_N)
        quick["ks_replicas"] = run_all.BGHKPU_KS_REPLICAS // 2
        full = payload(wall=0.001, n=run_all.BGHKPU_N)
        full["ks_replicas"] = run_all.BGHKPU_KS_REPLICAS
        regressions, skipped = run_all.check_regressions(
            quick, full,
            group_key="engines", config_keys=("n", "seed", "ks_replicas"),
        )
        assert regressions == []
        assert "n=" in skipped

    def test_clean_run_passes(self, run_all):
        regressions, skipped = run_all.check_regressions(
            payload(wall=1.1), payload(wall=1.0),
            group_key="engines", config_keys=("n", "seed"),
        )
        assert skipped is None
        assert regressions == []

    def test_wall_regression_flagged(self, run_all):
        regressions, skipped = run_all.check_regressions(
            payload(wall=10.0), payload(wall=1.0),
            group_key="engines", config_keys=("n", "seed"),
            wall_threshold=2.5,
        )
        assert skipped is None
        assert len(regressions) == 1
        assert "wall" in regressions[0]
        assert "fast" in regressions[0]

    def test_interactions_drift_flagged(self, run_all):
        regressions, _ = run_all.check_regressions(
            payload(interactions=2000), payload(interactions=1000),
            group_key="engines", config_keys=("n", "seed"),
            interactions_tol=0.10,
        )
        assert len(regressions) == 1
        assert "interactions" in regressions[0]
        assert "drift" in regressions[0]

    def test_drift_within_tolerance_passes(self, run_all):
        regressions, _ = run_all.check_regressions(
            payload(interactions=1050), payload(interactions=1000),
            group_key="engines", config_keys=("n", "seed"),
            interactions_tol=0.10,
        )
        assert regressions == []

    def test_faster_run_passes(self, run_all):
        regressions, _ = run_all.check_regressions(
            payload(wall=0.1), payload(wall=1.0),
            group_key="engines", config_keys=("n", "seed"),
        )
        assert regressions == []

    def test_new_engine_not_in_baseline_ignored(self, run_all):
        fresh = payload()
        fresh["engines"]["extra"] = {"wall_seconds": 99.0, "interactions": 1}
        regressions, _ = run_all.check_regressions(
            fresh, payload(), group_key="engines", config_keys=("n",),
        )
        assert regressions == []


class TestRunGate:
    def test_pass_verdict(self, run_all, capsys):
        ok = run_all.run_gate(
            [(payload(), payload(), "engines", ("n", "seed"))], 2.5, 0.1
        )
        assert ok
        out = capsys.readouterr().out
        assert "OK demo" in out
        assert "gate verdict: PASS" in out

    def test_fail_verdict(self, run_all, capsys):
        ok = run_all.run_gate(
            [(payload(wall=10.0), payload(wall=1.0), "engines", ("n",))],
            2.5, 0.1,
        )
        assert not ok
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "gate verdict: FAIL" in out

    def test_skip_does_not_fail(self, run_all, capsys):
        ok = run_all.run_gate(
            [(payload(), None, "engines", ("n",))], 2.5, 0.1
        )
        assert ok
        assert "SKIP" in capsys.readouterr().out

    def test_github_step_summary(self, run_all, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        run_all.run_gate(
            [(payload(wall=10.0), payload(wall=1.0), "engines", ("n",))],
            2.5, 0.1,
        )
        text = summary.read_text()
        assert "Bench regression gate: FAIL" in text
        assert "REGRESSION" in text


class TestCommittedBaselines:
    """The repo's own BENCH_*.json stay loadable and gate-compatible."""

    def test_loadable(self, run_all):
        root = os.path.dirname(BENCHMARKS_DIR)
        engines = run_all.load_baseline(
            os.path.join(root, "BENCH_engines.json")
        )
        kernels = run_all.load_baseline(
            os.path.join(root, "BENCH_kernels.json")
        )
        backends = run_all.load_baseline(
            os.path.join(root, "BENCH_backends.json")
        )
        bghkpu = run_all.load_baseline(
            os.path.join(root, "BENCH_bghkpu.json")
        )
        assert engines and "engines" in engines
        assert kernels and "paths" in kernels
        assert backends and "backends" in backends
        assert "numpy" in backends["backends"]
        assert backends["bit_identical_across_backends"] is True
        assert bghkpu and "engines" in bghkpu
        assert bghkpu["distribution_ok"] is True
        assert bghkpu["speedup_batch_over_bghkpu"] >= bghkpu["target_speedup"]
        # self-comparison is a clean pass by construction
        for fresh, key, cfg in (
            (engines, "engines", ("n", "seed")),
            (kernels, "paths", ("n", "seed", "rounds")),
            (backends, "backends", ("n", "seed", "rounds", "rows")),
            (bghkpu, "engines", ("n", "seed", "ks_replicas")),
        ):
            regressions, skipped = run_all.check_regressions(
                fresh, fresh, group_key=key, config_keys=cfg
            )
            assert skipped is None and regressions == []

    def test_missing_file_is_none(self, run_all):
        assert run_all.load_baseline("/nonexistent/BENCH.json") is None
