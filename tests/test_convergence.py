"""Tests for convergence/silence diagnostics."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    agreement_fraction,
    convergence_time,
    is_silent,
    output_stabilization_time,
    silence_time,
)
from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import CountEngine


class TestConvergenceTime:
    def test_constant_series(self):
        point = convergence_time([0, 1, 2], [5, 5, 5])
        assert point.converged and point.time == 0 and point.final_value == 5

    def test_settling_series(self):
        point = convergence_time([0, 1, 2, 3], [1, 2, 3, 3])
        # the series first reaches its final value at t = 2
        assert point.converged and point.time == 2

    def test_changing_at_end(self):
        point = convergence_time([0, 1, 2], [1, 1, 2])
        # the only sample at the final value IS the last one: cannot claim
        # convergence strictly before it
        assert point.converged and point.time == 2

    def test_empty(self):
        assert not convergence_time([], []).converged

    def test_joint_outputs(self):
        times = [0, 1, 2, 3]
        point = output_stabilization_time(
            times, [[1, 1, 1, 1], [0, 1, 1, 1]]
        )
        assert point.converged and point.time == 1


class TestSilence:
    def _epidemic(self):
        schema = StateSchema()
        schema.flag("I")
        return single_thread(
            "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
        )

    def test_epidemic_becomes_silent(self):
        proto = self._epidemic()
        pop = Population.from_groups(proto.schema, [({"I": True}, 1), ({}, 199)])
        eng = CountEngine(proto, pop, rng=np.random.default_rng(0))
        when = silence_time(eng, max_rounds=200)
        assert when is not None
        assert pop.all_satisfy(V("I"))

    def test_oscillator_never_silent(self):
        from repro.oscillator import make_oscillator_protocol, weak_value

        proto = make_oscillator_protocol()
        pop = Population.from_groups(
            proto.schema,
            [
                ({"osc": weak_value(0)}, 60),
                ({"osc": weak_value(1)}, 30),
                ({"osc": weak_value(2)}, 9),
                ({"osc": weak_value(0), "X": True}, 1),
            ],
        )
        eng = CountEngine(proto, pop, rng=np.random.default_rng(1))
        assert silence_time(eng, max_rounds=30) is None
        assert not is_silent(eng)

    def test_is_silent_exact(self):
        proto = self._epidemic()
        pop = Population.uniform(proto.schema, 50, {"I": True})
        eng = CountEngine(proto, pop, rng=np.random.default_rng(2))
        assert is_silent(eng)


class TestAgreement:
    def test_agreement_fraction(self):
        schema = StateSchema()
        schema.flag("Y")
        pop = Population.from_groups(schema, [({"Y": True}, 70), ({}, 30)])
        assert agreement_fraction(pop, V("Y")) == pytest.approx(0.7)
        pop2 = Population.from_groups(schema, [({"Y": True}, 20), ({}, 80)])
        assert agreement_fraction(pop2, V("Y")) == pytest.approx(0.8)
