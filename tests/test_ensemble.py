"""EnsembleEngine: stacked rows, exact fallback, chunked replica fan-out.

Covers the four contracts the vectorized ensemble engine makes:

* ``batch=1`` rows are **bit-identical** to solo ``CountEngine`` runs
  under the same per-row seed streams (the exact-fallback path is the
  only sampler).
* Stacked rows agree with per-replica engines **in distribution** —
  pooled two-sample KS on the E3 oscillator species counts and on
  epidemic hitting times.
* The chunked replica runner preserves the supervision contract:
  process-count invariance, crash-retry with fresh per-row seed children
  and ``retry_of`` provenance, whole-chunk failure records, manifest
  resume equivalence, and chunk-level replay bit-identity.
* The parent-process table prewarm relabels worker cache provenance as
  ``"prewarmed"``.
"""

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.core import Population
from repro.engine import (
    DEFAULT_ENSEMBLE_CHUNK,
    CountEngine,
    EnsembleEngine,
    run_replicas,
)
from repro.engine.ensemble import VectorizedStop
from repro.engine.replicas import ensemble_chunk_members, map_replicas
from repro.faults import ALWAYS, FaultPlan
from repro.obs import load_manifest, replay_replica, resume_sweep
from repro.oscillator import make_oscillator_protocol, species, weak_value
from repro.simulate import make_engine
from repro.workloads import build_workload

KS_ALPHA = 0.001


def epidemic(n=300):
    wl = build_workload("epidemic", n=n)
    return wl.protocol, wl.population, wl.stop


def oscillator_population(schema, n):
    third = (n - 3) // 3
    return Population.from_groups(
        schema,
        [
            ({"osc": weak_value(0)}, third + (n - 3) - 3 * third),
            ({"osc": weak_value(1)}, third),
            ({"osc": weak_value(2)}, third),
            ({"osc": weak_value(0), "X": True}, 3),
        ],
    )


class TestEnsembleCore:
    def test_single_row_runs_like_an_engine(self):
        # n large enough that the accuracy cap admits stacked batches
        protocol, population, stop = epidemic(n=2000)
        eng = EnsembleEngine(
            protocol, population, rng=np.random.default_rng(0)
        )
        eng.run(stop=stop, rounds=200.0)
        assert eng.stop_verdict is True
        assert eng.interactions == eng.row_interactions_of(0)
        stats = eng.stats.as_dict()
        assert stats["ensemble_rows"] == 1
        assert stats["batches"] >= 1

    def test_rows_share_one_compiled_table(self):
        protocol, population, _ = epidemic(n=120)
        eng = EnsembleEngine(
            protocol, population, rng=np.random.default_rng(1), rows=5
        )
        eng.run(rounds=5.0)
        for r in range(5):
            assert eng.row_interactions_of(r) == 5 * 120
            assert eng.row_population(r).n == 120
        assert eng.row_stats(2).ensemble_rows == 5

    def test_batch1_rows_bit_identical_to_count_engine(self):
        protocol, population, stop = epidemic(n=150)
        rows = 4
        seeds = [np.random.SeedSequence(9, spawn_key=(k,)) for k in range(rows)]
        eng = EnsembleEngine(
            protocol,
            population.copy(),
            rng=np.random.default_rng(123),
            rows=rows,
            row_rngs=[np.random.default_rng(s) for s in seeds],
            batch=1,
        )
        eng.run(stop=stop, rounds=400.0)
        for k in range(rows):
            solo = CountEngine(
                protocol, population.copy(), rng=np.random.default_rng(seeds[k])
            )
            solo.run(stop=stop, rounds=400.0)
            assert eng.row_interactions_of(k) == solo.interactions
            assert eng.row_verdict(k) == solo.stop_verdict
            assert (
                eng.row_population(k).counts == solo.population.counts
            )

    def test_vectorized_stop_uses_fast_path(self):
        protocol, population, stop = epidemic(n=100)
        eng = EnsembleEngine(
            protocol, population, rng=np.random.default_rng(2), rows=3
        )
        vstop = VectorizedStop(stop, eng._ct, protocol.schema)
        assert vstop._fast is not None
        verdicts = vstop(eng._C)
        assert verdicts.tolist() == [False, False, False]

    def test_scalar_stop_fallback_matches_predicate(self):
        protocol, population, _ = epidemic(n=80)

        # a plain predicate without a vectorize hook: per-row Populations
        def no_healthy(pop):
            return all(
                protocol.schema.unpack(code)["I"] or count == 0
                for code, count in pop.counts.items()
            )

        eng = EnsembleEngine(
            protocol, population, rng=np.random.default_rng(3), rows=2
        )
        vstop = VectorizedStop(no_healthy, eng._ct, protocol.schema)
        assert vstop._fast is None
        assert vstop(eng._C).tolist() == [False, False]

    def test_rejects_observers_and_bad_params(self):
        protocol, population, _ = epidemic(n=60)
        with pytest.raises(ValueError):
            EnsembleEngine(protocol, population, rows=0)
        with pytest.raises(ValueError):
            EnsembleEngine(protocol, population, batch=0)
        with pytest.raises(ValueError):
            EnsembleEngine(protocol, population, accuracy=0.0)
        eng = EnsembleEngine(
            protocol, population, rng=np.random.default_rng(4), rows=2
        )
        with pytest.raises(ValueError, match="observer"):
            eng.run(rounds=1.0, observer=lambda *a: None)

    def test_requires_compilable_closure(self):
        protocol, population, _ = epidemic(n=60)
        with pytest.raises(RuntimeError):
            EnsembleEngine(protocol, population, compile_limit=1)

    def test_row_rngs_length_checked(self):
        protocol, population, _ = epidemic(n=60)
        with pytest.raises(ValueError, match="one generator per row"):
            EnsembleEngine(
                protocol, population, rows=3,
                row_rngs=[np.random.default_rng(0)],
            )


class TestEnsembleDistribution:
    @pytest.mark.slow
    def test_oscillator_species_counts_pooled_ks(self):
        """E3 oscillator: stacked rows vs solo batch engines at a fixed
        horizon must agree in distribution (pooled over species)."""
        n, rounds, rows = 600, 30.0, 30
        protocol = make_oscillator_protocol()
        population = oscillator_population(protocol.schema, n)
        eng = EnsembleEngine(
            protocol, population.copy(), rng=np.random.default_rng(77),
            rows=rows,
        )
        eng.run(rounds=rounds)
        formulas = {name: species(i) for i, name in enumerate(("A1", "A2", "A3"))}
        stacked = [
            eng.row_population(r).count(f)
            for r in range(rows)
            for f in formulas.values()
        ]
        solo = []
        for k in range(rows):
            ref = make_engine(
                protocol, population.copy(), engine="batch",
                rng=np.random.default_rng(500 + k),
            )
            ref.run(rounds=rounds)
            solo.extend(ref.population.count(f) for f in formulas.values())
        assert ks_2samp(stacked, solo).pvalue > KS_ALPHA

    def test_epidemic_hitting_times_pooled_ks(self):
        """Convergence-time distribution matches the per-replica engines."""
        protocol, population, stop = epidemic(n=300)
        replicas = 24
        ens = run_replicas(
            protocol, population.copy(), replicas=replicas, engine="ensemble",
            seed=5, processes=1, stop=stop, rounds=400.0,
            engine_opts={"ensemble_chunk": 8},
        )
        ref = run_replicas(
            protocol, population.copy(), replicas=replicas, engine="batch",
            seed=6, processes=1, stop=stop, rounds=400.0,
        )
        assert len(ens.ok) == len(ref.ok) == replicas
        assert ks_2samp(ens.rounds, ref.rounds).pvalue > KS_ALPHA


class TestEnsembleRunner:
    def _sweep(self, tmp_path=None, **kwargs):
        protocol, population, stop = epidemic(n=200)
        defaults = dict(
            replicas=10, engine="ensemble", seed=42, processes=1,
            stop=stop, rounds=300.0, engine_opts={"ensemble_chunk": 4},
        )
        defaults.update(kwargs)
        return run_replicas(protocol, population.copy(), **defaults)

    def test_chunk_membership_is_fixed_blocks(self):
        assert ensemble_chunk_members(0, 4, 10) == [0, 1, 2, 3]
        assert ensemble_chunk_members(2, 4, 10) == [8, 9]

    def test_records_carry_chunk_provenance(self):
        rs = self._sweep()
        assert len(rs.ok) == 10
        for record in rs.ok:
            members = record.extra["ensemble_chunk"]
            assert record.index in members
            assert members == ensemble_chunk_members(
                record.index // 4, 4, 10
            )
            assert record.seed["spawn_key"] == [record.index]
            assert record.stats["ensemble_rows"] == len(members)
            assert record.stats["table_cache"] == "prewarmed"

    def test_default_chunk_size_applies(self):
        rs = self._sweep(replicas=3, engine_opts={})
        assert all(
            r.extra["ensemble_chunk"] == [0, 1, 2] for r in rs.ok
        )
        assert DEFAULT_ENSEMBLE_CHUNK == 16

    def test_results_invariant_under_indices_subset(self):
        full = self._sweep()
        part = self._sweep(indices=[1, 5, 9])
        by_index = {r.index: r for r in full.records}
        assert sorted(r.index for r in part.records) == [1, 5, 9]
        for record in part.records:
            assert record.interactions == by_index[record.index].interactions
            assert record.rounds == by_index[record.index].rounds

    @pytest.mark.slow
    def test_results_invariant_under_process_count(self):
        serial = self._sweep()
        pooled = self._sweep(processes=3)
        assert [
            (r.index, r.interactions, r.rounds) for r in serial.records
        ] == [(r.index, r.interactions, r.rounds) for r in pooled.records]

    def test_chunk_crash_is_retried_with_fresh_seeds(self):
        rs = self._sweep(
            replicas=6, engine_opts={"ensemble_chunk": 3},
            faults=FaultPlan(crash={2: 1}), max_retries=2,
        )
        assert len(rs.ok) == 6
        retried = [r for r in rs.records if r.index in (0, 1, 2)]
        for record in retried:
            assert record.attempts == 2
            assert record.seed["retry_of"] == [record.index]
            assert record.seed["spawn_key"] == [record.index, 1]
        for record in rs.records:
            if record.index in (3, 4, 5):
                assert record.attempts == 1
                assert "retry_of" not in record.seed

    def test_exhausted_chunk_fails_every_member(self):
        rs = self._sweep(
            replicas=6, engine_opts={"ensemble_chunk": 3},
            faults=FaultPlan(crash={1: ALWAYS}), max_retries=1,
        )
        failed = rs.failures
        assert sorted(r.index for r in failed) == [0, 1, 2]
        for record in failed:
            assert record.status == "failed"
            assert record.extra["ensemble_chunk"] == [0, 1, 2]
            assert record.seed["retry_of"] == [record.index]
        assert sorted(r.index for r in rs.ok) == [3, 4, 5]

    def test_corrupt_table_fails_chunk_nonretryably(self):
        rs = self._sweep(
            replicas=4, engine_opts={"ensemble_chunk": 2, "guards": True},
            faults=FaultPlan(corrupt_table={0: "nan"}), max_retries=2,
        )
        failed = rs.failures
        assert sorted(r.index for r in failed) == [0, 1]
        assert all(r.attempts == 1 for r in failed)

    def test_manifest_resume_matches_uninterrupted(self, tmp_path):
        protocol, population, stop = epidemic(n=200)
        path = str(tmp_path / "full.jsonl")
        full = run_replicas(
            protocol, population.copy(), replicas=10, engine="ensemble",
            seed=42, processes=1, stop=stop, rounds=300.0,
            engine_opts={"ensemble_chunk": 4}, manifest=path,
            manifest_meta={"workload": {"name": "epidemic",
                                        "params": {"n": 200}}},
        )
        # simulate a kill mid-chunk: keep the header and the first three
        # replica lines (a partial chunk), then resume
        lines = open(path).readlines()
        cut = str(tmp_path / "cut.jsonl")
        with open(cut, "w") as handle:
            handle.writelines(lines[:4])
        resumed = resume_sweep(cut, processes=1)
        assert sorted(r.index for r in resumed.ok) == list(range(10))
        by_index = {r.index: r for r in full.records}
        for record in resumed.ok:
            assert record.interactions == by_index[record.index].interactions
            assert record.rounds == by_index[record.index].rounds
            assert record.converged == by_index[record.index].converged

    def test_replay_replica_is_bit_identical(self, tmp_path):
        protocol, population, stop = epidemic(n=200)
        path = str(tmp_path / "run.jsonl")
        rs = run_replicas(
            protocol, population.copy(), replicas=6, engine="ensemble",
            seed=13, processes=1, stop=stop, rounds=300.0,
            engine_opts={"ensemble_chunk": 3}, manifest=path,
            manifest_meta={"workload": {"name": "epidemic",
                                        "params": {"n": 200}}},
        )
        manifest = load_manifest(path)
        for index in (0, 4):
            original = rs.records[index]
            fresh = replay_replica(manifest, index)
            assert fresh.interactions == original.interactions
            assert fresh.rounds == original.rounds
            assert fresh.converged == original.converged

    def test_prewarm_labels_batch_engine_workers_too(self):
        protocol, population, stop = epidemic(n=200)
        rs = run_replicas(
            protocol, population.copy(), replicas=3, engine="batch",
            seed=2, processes=1, stop=stop, rounds=300.0,
        )
        assert all(
            r.stats["table_cache"] == "prewarmed" for r in rs.ok
        )

    def test_map_replicas_chunked_matches_unchunked(self):
        a = map_replicas(_draw_int, 11, seed=3, processes=1, chunk=1)
        b = map_replicas(_draw_int, 11, seed=3, processes=1, chunk=4)
        assert a == b
        with pytest.raises(ValueError):
            map_replicas(_draw_int, 4, chunk=0)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="ensemble_chunk"):
            self._sweep(engine_opts={"ensemble_chunk": 0})


def _draw_int(seed_seq):
    return int(np.random.default_rng(seed_seq).integers(0, 10 ** 6))
