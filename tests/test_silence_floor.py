"""Scale-aware silence floor: no false convergence at n >= 1e8.

Regression suite for the absolute ``p_change <= 1e-15`` floor that used
to decide silence in every engine.  At n = 1e8 the leader fight's true
change probability with 3 leaders left is ``3·2 / (n·(n-1)) ≈ 6e-16`` —
*below* the old floor — so engines declared the configuration silent and
``unique_leader`` stop predicates never saw the last two eliminations.
Silence is now decided on the exact total change weight (zero iff truly
silent), so these tests build the 3-leader endgame at n = 1e8 directly
and require (a) no silence report and (b) convergence to one leader,
while genuinely silent configurations still halt immediately.
"""

import numpy as np
import pytest

from repro.analysis.convergence import is_silent
from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine.config import EngineConfig
from repro.engine.silence import CRUMB_GUARD, exact_change_weight, silent_weight
from repro.simulate import make_engine
from repro.workloads import build_workload, unique_leader

N_HUGE = 10**8
ENDGAME_LEADERS = 3


def endgame(n=N_HUGE, leaders=ENDGAME_LEADERS):
    """Leader fight dropped straight into an ``leaders``-leader endgame."""
    wl = build_workload("leader", n=n, leaders=leaders)
    return wl.protocol, wl.population, wl.stop


def followers_only(n=N_HUGE):
    """A truly silent configuration: no leaders left to fight."""
    schema = StateSchema()
    schema.flag("L")
    protocol = single_thread(
        "leader-fight", schema, [Rule(V("L"), V("L"), None, {"L": False})]
    )
    population = Population.from_groups(schema, [({"L": False}, n)])
    return protocol, population


class TestSilenceHelpers:
    def test_exact_weight_three_leader_endgame(self):
        # counts (3 leaders, n-3 followers), q nonzero only on (L, L):
        # weight = 3·2·q_LL, and p_change ~ 6e-16 underflows the old floor
        q_ll = 0.25
        c = np.array([3.0, float(N_HUGE - 3)])
        q = np.array([[q_ll, 0.0], [0.0, 0.0]])
        weight = exact_change_weight(c, q)
        assert weight == pytest.approx(3 * 2 * q_ll)
        pairs_total = float(N_HUGE) * (N_HUGE - 1.0)
        assert weight / pairs_total < 1e-15  # the old floor really did bite
        assert not silent_weight(weight)

    def test_exact_weight_zero_iff_silent(self):
        q = np.array([[0.25, 0.0], [0.0, 0.0]])
        silent_counts = np.array([1.0, float(N_HUGE - 1)])  # lone L: no pair
        assert exact_change_weight(silent_counts, q) == 0.0
        assert silent_weight(0.0)
        assert not silent_weight(5e-324)  # even a denormal weight is alive

    def test_silent_weight_vectorized(self):
        tot = np.array([0.0, 6e-16, 1.5])
        np.testing.assert_array_equal(
            silent_weight(tot), np.array([True, False, False])
        )


class TestCountEngineEndgame:
    def test_not_reported_silent_at_1e8(self):
        protocol, pop, _ = endgame()
        eng = make_engine(protocol, pop, engine="count", seed=0)
        assert not is_silent(eng)
        assert eng._draw_event_gap() is not None

    def test_converges_to_one_leader(self):
        protocol, pop, stop = endgame()
        eng = make_engine(protocol, pop, engine="count", seed=1)
        eng.run(stop=stop, max_events=10)
        assert pop.count(V("L")) == 1
        assert eng.events == ENDGAME_LEADERS - 1
        # the skipped-null gaps really are astronomically long
        assert eng.interactions > 10**12

    def test_true_silence_still_detected(self):
        protocol, pop = followers_only()
        eng = make_engine(protocol, pop, engine="count", seed=2)
        assert is_silent(eng)
        assert eng._draw_event_gap() is None
        eng.run(rounds=5.0)  # budget fast-forwards instead of looping
        assert eng.interactions == 5 * N_HUGE

    def test_crumby_bookkeeping_does_not_fake_aliveness(self):
        # a silent engine whose incremental v picked up fp crumbs must
        # still report silence (the exact recompute decides, not v)
        protocol, pop = followers_only(n=1000)
        eng = make_engine(protocol, pop, engine="count", seed=3)
        eng._v = eng._v + 1e-12  # simulated accumulation crumbs
        assert eng._total_change_weight() != 0.0
        assert eng._total_change_weight() <= CRUMB_GUARD
        assert is_silent(eng)
        assert eng._draw_event_gap() is None


class TestBatchEngineEndgame:
    @pytest.mark.parametrize("compiled", [True, False])
    def test_converges_to_one_leader(self, compiled):
        protocol, pop, stop = endgame()
        cfg = EngineConfig(engine="batch", compiled=compiled, cache=False)
        eng = make_engine(protocol, pop, engine=cfg, seed=4)
        eng.run(stop=stop, max_events=10)
        assert pop.count(V("L")) == 1
        assert eng.stop_verdict is True

    def test_true_silence_fast_forwards(self):
        protocol, pop = followers_only()
        cfg = EngineConfig(engine="batch", cache=False)
        eng = make_engine(protocol, pop, engine=cfg, seed=5)
        eng.run(rounds=3.0)
        assert eng.interactions == 3 * N_HUGE
        assert eng.events == 0


class TestBGHKPUEndgame:
    def test_exact_endgame_converges(self):
        # the acceptance-criteria path: bghkpu's scalar lone-cell loop
        # steps the 3-leader endgame at n = 1e8 on exact geometric gaps
        protocol, pop, stop = endgame()
        cfg = EngineConfig(engine="bghkpu", cache=False)
        eng = make_engine(protocol, pop, engine=cfg, seed=6)
        eng.run(stop=stop, max_events=10)
        assert pop.count(V("L")) == 1
        assert eng.stop_verdict is True
        assert eng.events == ENDGAME_LEADERS - 1
        assert eng.interactions > 10**12

    def test_true_silence_fast_forwards(self):
        protocol, pop = followers_only()
        cfg = EngineConfig(engine="bghkpu", cache=False)
        eng = make_engine(protocol, pop, engine=cfg, seed=7)
        eng.run(rounds=2.0)
        assert eng.interactions == 2 * N_HUGE
        assert eng.events == 0


class TestEnsembleEndgame:
    def test_rows_not_retired_at_1e8(self):
        from repro.engine.ensemble import EnsembleEngine

        protocol, pop, stop = endgame()
        eng = EnsembleEngine(
            protocol, pop, rows=2, rng=np.random.default_rng(8), cache=False,
        )
        eng.run(stop=stop, max_events=10)
        for r in range(2):
            assert eng.row_verdict(r) is True, "row {} never converged".format(r)
            assert eng.row_population(r).count(V("L")) == 1


class TestWorkloadParam:
    def test_leader_workload_accepts_leaders(self):
        wl = build_workload("leader", n=100, leaders=3)
        assert wl.population.count(V("L")) == 3
        assert wl.population.n == 100
        assert wl.params == {"n": 100, "leaders": 3}
        assert wl.stop is unique_leader

    def test_leader_workload_default_unchanged(self):
        wl = build_workload("leader", n=50)
        assert wl.population.count(V("L")) == 50

    def test_leader_workload_validates_leaders(self):
        with pytest.raises(ValueError):
            build_workload("leader", n=10, leaders=0)
        with pytest.raises(ValueError):
            build_workload("leader", n=10, leaders=11)
