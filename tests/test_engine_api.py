"""Engine protocol conformance: every engine honours the unified API.

All engines must accept the uniform keyword-only constructor
``Engine(protocol, population, *, rng=None, table=None)``, expose the
shared ``n`` / ``rounds`` / ``interactions`` / ``population`` surface, run
under every budget style (``rounds=``, ``interactions=``, ``stop=``), feed
observers on a uniform time grid, and reject budget-less runs.
"""

import numpy as np
import pytest

from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import (
    ArrayEngine,
    BatchCountEngine,
    BGHKPUEngine,
    CountEngine,
    Engine,
    MatchingEngine,
    Trace,
)
from repro.engine.api import require_budget
from repro.engine.table import LazyTable

ALL_ENGINES = [
    CountEngine, BatchCountEngine, BGHKPUEngine, ArrayEngine, MatchingEngine,
]


@pytest.fixture
def epidemic():
    schema = StateSchema()
    schema.flag("I")
    return single_thread(
        "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
    )


def epidemic_population(schema, n, infected=1):
    return Population.from_groups(
        schema, [({"I": True}, infected), ({"I": False}, n - infected)]
    )


def all_infected(pop):
    return pop.all_satisfy(V("I"))


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
class TestConformance:
    def test_is_engine_subclass(self, engine_cls):
        assert issubclass(engine_cls, Engine)
        assert isinstance(engine_cls.name, str) and engine_cls.name

    def test_uniform_constructor(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 100)
        eng = engine_cls(
            epidemic, pop, rng=np.random.default_rng(0), table=LazyTable(epidemic)
        )
        assert eng.n == 100
        assert eng.rounds == 0.0
        assert eng.interactions == 0

    def test_positional_rng_rejected(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 100)
        with pytest.raises(TypeError):
            engine_cls(epidemic, pop, np.random.default_rng(0))

    def test_schema_mismatch_rejected(self, engine_cls, epidemic):
        other = StateSchema()
        other.flag("I")
        pop = epidemic_population(other, 100)
        with pytest.raises(ValueError):
            engine_cls(epidemic, pop)

    def test_tiny_population_rejected(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 1)
        with pytest.raises(ValueError):
            engine_cls(epidemic, pop)

    def test_requires_budget_or_stop(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 100)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(1))
        with pytest.raises(ValueError):
            eng.run()

    def test_runs_to_stop(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 300)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(2))
        eng.run(stop=all_infected)
        assert eng.population.count(V("I")) == 300
        assert eng.interactions > 0
        assert eng.rounds > 0.0

    def test_rounds_budget(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(3))
        eng.run(rounds=3)
        assert eng.rounds >= 3.0 - 1e-9
        # engines may overshoot by at most one scheduling quantum
        assert eng.rounds < 5.0

    def test_interactions_budget(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(4))
        eng.run(interactions=500)
        assert 500 <= eng.interactions < 500 + 200

    def test_rounds_tracks_interactions(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(5))
        eng.run(rounds=4)
        if engine_cls is MatchingEngine:
            # one matching round performs at most n/2 interactions
            assert eng.interactions <= eng.rounds * (eng.n // 2)
        else:
            assert eng.rounds == pytest.approx(eng.interactions / eng.n)

    def test_population_reflects_final_state(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 150)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(6))
        eng.run(stop=all_infected)
        final = eng.population
        assert final.n == 150
        assert final.count(V("I")) == 150

    def test_run_until(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 150)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(7))
        assert eng.run_until(all_infected, max_rounds=500.0)

    def test_observer_uniform_grid(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(8))
        trace = Trace({"I": V("I")})
        eng.run(rounds=10, observer=trace, observe_every=1.0)
        assert len(trace) >= 10
        assert (np.diff(trace.times) > 0).all()

    def test_continuation_accumulates(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 200)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(9))
        eng.run(rounds=2)
        first = eng.interactions
        eng.run(rounds=2)
        assert eng.interactions >= first
        assert eng.rounds >= 4.0 - 1e-9


class CountingStop:
    """Stop predicate that counts its evaluations (picklable)."""

    def __init__(self):
        self.calls = 0

    def __call__(self, population):
        self.calls += 1
        return all_infected(population)


class OneShotStop:
    """Hysteresis predicate: answers True exactly once, then False.

    Models the clock-phase stops used in E4, which latch on a phase
    crossing — re-evaluating them after the engine has stopped flips the
    answer and misreports convergence.
    """

    def __init__(self):
        self.fired = False

    def __call__(self, population):
        if self.fired:
            return False
        if all_infected(population):
            self.fired = True
            return True
        return False


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
class TestStopVerdict:
    """The engine's own stop evaluation is captured once and reused."""

    def test_verdict_recorded(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 120)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(0))
        eng.run(stop=all_infected)
        assert eng.stop_verdict is True

    def test_verdict_false_when_budget_exhausted(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 500)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(1))
        eng.run(rounds=0.5, stop=all_infected)
        if eng.stop_verdict is not None:
            assert eng.stop_verdict is False

    def test_verdict_reset_between_runs(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 120)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(2))
        eng.run(stop=all_infected)
        assert eng.stop_verdict is True
        eng.run(rounds=1.0)
        assert eng.stop_verdict is None

    def test_run_until_does_not_reevaluate(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 120)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(3))
        stop = CountingStop()
        assert eng.run_until(stop, max_rounds=500.0)
        # every recorded call came from inside the engine loop: the
        # wrapper's count and the predicate's own count must agree
        assert stop.calls == eng.stats.stop_evals

    def test_run_until_honours_hysteresis(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 120)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(4))
        stop = OneShotStop()
        # the engine stops on the single True; a second evaluation would
        # return False and misreport convergence
        assert eng.run_until(stop, max_rounds=500.0) is True

    def test_stop_evals_counter(self, engine_cls, epidemic):
        pop = epidemic_population(epidemic.schema, 120)
        eng = engine_cls(epidemic, pop, rng=np.random.default_rng(5))
        stop = CountingStop()
        eng.run(stop=stop)
        assert eng.stats.stop_evals == stop.calls > 0


class TestRequireBudget:
    def test_rejects_all_none(self):
        with pytest.raises(ValueError):
            require_budget(None, None, None)

    def test_accepts_any_criterion(self):
        require_budget(1.0, None, None)
        require_budget(None, 10, None)
        require_budget(None, None, lambda p: True)
        require_budget(None, None, None, 5)
