"""Scheduler-equivalence checks (paper Section 5.3).

The hierarchy construction relies on the analysed protocols behaving the
same under the asynchronous sequential scheduler and the random-matching
scheduler (up to the obvious factor-of-two in time normalization).  These
tests compare the two schedulers' behaviour on the building blocks.
"""

import numpy as np
import pytest

from repro.core import Population, Rule, StateSchema, V, single_thread
from repro.engine import ArrayEngine, CountEngine, MatchingEngine
from repro.oscillator import (
    extract_oscillations,
    make_oscillator_protocol,
    species,
    strong_value,
    weak_value,
)


def oscillator_pop(schema, n):
    c1 = int(0.8 * (n - 3))
    c2 = int(0.17 * (n - 3))
    return Population.from_groups(
        schema,
        [
            ({"osc": strong_value(0)}, c1),
            ({"osc": weak_value(1)}, c2),
            ({"osc": weak_value(2)}, (n - 3) - c1 - c2),
            ({"osc": weak_value(0), "X": True}, 3),
        ],
    )


class TestOscillatorEquivalence:
    """Theorem 5.1 'holds under an asynchronous fair scheduler or a
    random-matching fair synchronous scheduler'."""

    N = 2000

    def _periods(self, engine_cls, seed, rounds):
        proto = make_oscillator_protocol()
        pop = oscillator_pop(proto.schema, self.N)
        from repro.engine import Trace

        trace = Trace({"A1": species(0), "A2": species(1), "A3": species(2)})
        eng = engine_cls(proto, pop, rng=np.random.default_rng(seed))
        eng.run(rounds=rounds, observer=trace, observe_every=4)
        counts = [trace.series(k) for k in ("A1", "A2", "A3")]
        return extract_oscillations(trace.times, counts, self.N, threshold=0.7)

    def test_both_schedulers_oscillate_cyclically(self):
        seq = self._periods(ArrayEngine, 0, 3000)
        par = self._periods(MatchingEngine, 0, 6000)
        assert seq.cyclic_order_ok and seq.sweeps >= 3
        assert par.cyclic_order_ok and par.sweeps >= 3

    def test_periods_match_up_to_time_normalization(self):
        """One matching step = n/2 interactions = 1/2 parallel round."""
        seq = self._periods(ArrayEngine, 1, 3000)
        par = self._periods(MatchingEngine, 1, 6000)
        seq_period = np.median(seq.periods)
        par_period = np.median(par.periods) / 2.0  # steps -> rounds
        assert 0.6 < seq_period / par_period < 1.6


class TestEliminationEquivalence:
    def test_decay_rates_match(self):
        from repro.control import make_elimination_protocol

        proto = make_elimination_protocol()
        n = 2000
        seq_pop = Population.uniform(proto.schema, n, {"X": True})
        CountEngine(proto, seq_pop, rng=np.random.default_rng(2)).run(rounds=20)
        par_pop = Population.uniform(proto.schema, n, {"X": True})
        par_eng = MatchingEngine(proto, par_pop, rng=np.random.default_rng(2))
        par_eng.run(rounds=40)
        seq_x = seq_pop.count(V("X"))
        # array engines snapshot the population; read the engine's view
        par_x = par_eng.population.count(V("X"))
        assert 0.5 < seq_x / par_x < 2.0


class TestEpidemicEquivalence:
    def test_epidemic_half_times_proportional(self):
        schema = StateSchema()
        schema.flag("I")
        proto = single_thread(
            "epidemic", schema, [Rule(V("I"), ~V("I"), None, {"I": True})]
        )
        n = 2000

        def half_time_sequential(seed):
            pop = Population.from_groups(schema, [({"I": True}, 1), ({}, n - 1)])
            eng = CountEngine(proto, pop, rng=np.random.default_rng(seed))
            eng.run(stop=lambda p: p.count(V("I")) >= n // 2)
            return eng.rounds

        def half_time_matching(seed):
            pop = Population.from_groups(schema, [({"I": True}, 1), ({}, n - 1)])
            eng = MatchingEngine(proto, pop, rng=np.random.default_rng(seed))
            eng.run(rounds=10000, stop=lambda p: p.count(V("I")) >= n // 2)
            return eng.rounds / 2.0

        seq = np.median([half_time_sequential(s) for s in range(5)])
        par = np.median([half_time_matching(s) for s in range(5)])
        # matching only infects initiator->responder once per step; rates
        # agree within a constant close to 1 after time normalization
        assert 0.4 < seq / par < 2.5
